#include "baseline/baseline_evaluator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>

#include "rete/expression_eval.h"
#include "rete/join_node.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

Value LabelsValue(const std::vector<std::string>& labels) {
  ValueList out;
  out.reserve(labels.size());
  for (const std::string& label : labels) out.push_back(Value::String(label));
  return Value::List(std::move(out));
}

/// Resolves each extract's property key to its symbol — once per operator
/// evaluation, so the per-element loops below never hash strings.
/// kNoSymbol for non-property extracts and never-interned names.
std::vector<SymbolId> ResolveExtractKeys(
    const SymbolTable& symbols, const std::vector<PropertyExtract>& extracts) {
  std::vector<SymbolId> keys;
  keys.reserve(extracts.size());
  for (const PropertyExtract& extract : extracts) {
    if (extract.what != PropertyExtract::What::kProperty) {
      keys.push_back(kNoSymbol);
      continue;
    }
    keys.push_back(symbols.Lookup(extract.key).value_or(kNoSymbol));
  }
  return keys;
}

/// Resolves a name list (required labels / allowed edge types). Returns
/// false when a name was never interned — no element can match, so the
/// caller's scan is empty.
bool ResolveNames(const SymbolTable& symbols,
                  const std::vector<std::string>& names,
                  std::vector<SymbolId>* out) {
  out->reserve(names.size());
  for (const std::string& name : names) {
    std::optional<SymbolId> id = symbols.Lookup(name);
    if (!id) return false;
    out->push_back(*id);
  }
  return true;
}

}  // namespace

std::vector<Tuple> BaselineEvaluator::SortedRows(const Bag& bag) {
  std::vector<Tuple> rows;
  for (const auto& [tuple, count] : bag.counts()) {
    for (int64_t i = 0; i < count; ++i) rows.push_back(tuple);
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return Tuple::Compare(a, b) < 0;
  });
  return rows;
}

Result<Bag> BaselineEvaluator::Evaluate(const OpPtr& plan) const {
  return Eval(plan);
}

Value BaselineEvaluator::VertexExtract(const PropertyExtract& extract,
                                       SymbolId key, VertexId v) const {
  switch (extract.what) {
    case PropertyExtract::What::kProperty:
      return graph_->GetVertexProperty(v, key);
    case PropertyExtract::What::kLabels:
      return LabelsValue(graph_->VertexLabels(v));
    case PropertyExtract::What::kPropertyMap:
      return Value::Map(graph_->VertexProperties(v));
    case PropertyExtract::What::kType:
      return Value::Null();
  }
  return Value::Null();
}

Value BaselineEvaluator::EdgeExtract(const PropertyExtract& extract,
                                     SymbolId key, VertexId a, VertexId b,
                                     EdgeId e) const {
  // element_var naming matches the leaf's src/edge/dst columns; the caller
  // resolves which endpoint the extract refers to.
  (void)a;
  (void)b;
  switch (extract.what) {
    case PropertyExtract::What::kProperty:
      return graph_->GetEdgeProperty(e, key);
    case PropertyExtract::What::kType:
      return Value::String(graph_->EdgeType(e));
    case PropertyExtract::What::kPropertyMap:
      return Value::Map(graph_->EdgeProperties(e));
    case PropertyExtract::What::kLabels:
      return Value::Null();
  }
  return Value::Null();
}

Result<Bag> BaselineEvaluator::EvalGetVertices(const OpPtr& op) const {
  Bag out;
  // Resolve label names and extract keys to symbols once; the per-vertex
  // loop is then id comparisons and O(1) column probes.
  std::vector<SymbolId> required;
  if (!ResolveNames(graph_->symbols(), op->labels, &required)) {
    return out;  // a label the graph has never seen matches nothing
  }
  std::vector<SymbolId> keys =
      ResolveExtractKeys(graph_->symbols(), op->extracts);
  auto consider = [&](VertexId v) {
    for (SymbolId label : required) {
      if (!graph_->VertexHasLabel(v, label)) return;
    }
    std::vector<Value> values;
    values.reserve(1 + op->extracts.size());
    values.push_back(Value::Vertex(v));
    for (size_t i = 0; i < op->extracts.size(); ++i) {
      values.push_back(VertexExtract(op->extracts[i], keys[i], v));
    }
    out.Apply(Tuple(std::move(values)), 1);
  };
  if (!required.empty()) {
    for (VertexId v : graph_->VerticesWithLabelId(required[0])) consider(v);
  } else {
    graph_->ForEachVertex(consider);
  }
  return out;
}

Result<Bag> BaselineEvaluator::EvalGetEdges(const OpPtr& op) const {
  Bag out;
  // Types and extract keys resolve to symbols once; the per-edge loop
  // compares ids and probes columns.
  std::vector<SymbolId> allowed_types;
  if (!op->edge_types.empty() &&
      !ResolveNames(graph_->symbols(), op->edge_types, &allowed_types)) {
    // A never-interned type still scans the resolvable ones.
    allowed_types.clear();
    for (const std::string& type : op->edge_types) {
      if (std::optional<SymbolId> id = graph_->symbols().Lookup(type)) {
        allowed_types.push_back(*id);
      }
    }
    if (allowed_types.empty()) return out;
  }
  std::vector<SymbolId> keys =
      ResolveExtractKeys(graph_->symbols(), op->extracts);
  auto build = [&](VertexId a, VertexId b, EdgeId e) {
    std::vector<Value> values;
    values.reserve(3 + op->extracts.size());
    values.push_back(Value::Vertex(a));
    values.push_back(Value::Edge(e));
    values.push_back(Value::Vertex(b));
    for (size_t i = 0; i < op->extracts.size(); ++i) {
      const PropertyExtract& extract = op->extracts[i];
      if (extract.element_var == op->edge_var) {
        values.push_back(EdgeExtract(extract, keys[i], a, b, e));
      } else if (extract.element_var == op->src_var) {
        values.push_back(VertexExtract(extract, keys[i], a));
      } else {
        values.push_back(VertexExtract(extract, keys[i], b));
      }
    }
    out.Apply(Tuple(std::move(values)), 1);
  };
  auto consider = [&](EdgeId e) {
    if (!op->edge_types.empty()) {
      SymbolId type = graph_->EdgeTypeId(e);
      if (std::find(allowed_types.begin(), allowed_types.end(), type) ==
          allowed_types.end()) {
        return;
      }
    }
    VertexId src = graph_->EdgeSource(e);
    VertexId dst = graph_->EdgeTarget(e);
    build(src, dst, e);
    if (op->direction == EdgeDirection::kBoth && src != dst) {
      build(dst, src, e);
    }
  };
  if (!op->edge_types.empty()) {
    std::vector<EdgeId> candidates;
    for (SymbolId type : allowed_types) {
      const std::vector<EdgeId>& of_type = graph_->EdgesWithTypeId(type);
      candidates.insert(candidates.end(), of_type.begin(), of_type.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (EdgeId e : candidates) consider(e);
  } else {
    graph_->ForEachEdge(consider);
  }
  return out;
}

Result<Bag> BaselineEvaluator::EvalPathJoin(const OpPtr& op) const {
  PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
  int src_index = op->children[0]->schema.IndexOf(op->src_var);
  if (src_index < 0) {
    return Status::Internal("path join source column missing");
  }
  bool reversed = op->direction == EdgeDirection::kIn;
  bool emit_path = !op->path_var.empty();
  int64_t limit = op->max_hops < 0 ? (int64_t{1} << 40) : op->max_hops;

  // Allowed types resolved to symbols once (never-interned names simply
  // drop out); the per-edge test inside the DFS is an id comparison.
  std::vector<SymbolId> allowed_types;
  for (const std::string& type : op->edge_types) {
    if (std::optional<SymbolId> id = graph_->symbols().Lookup(type)) {
      allowed_types.push_back(*id);
    }
  }
  auto type_ok = [&](EdgeId e) {
    if (op->edge_types.empty()) return true;
    SymbolId type = graph_->EdgeTypeId(e);
    return std::find(allowed_types.begin(), allowed_types.end(), type) !=
           allowed_types.end();
  };

  Bag out;
  for (const auto& [tuple, count] : input.counts()) {
    const Value& src_value = tuple.at(static_cast<size_t>(src_index));
    if (!src_value.is_vertex()) continue;
    VertexId source = src_value.AsVertex();
    if (!graph_->HasVertex(source)) continue;

    // DFS over trails in pattern direction, collecting matches in
    // [min_hops, max_hops].
    std::vector<VertexId> vertices{source};
    std::vector<EdgeId> edges;
    std::unordered_set<EdgeId> used;
    auto emit = [&]() {
      int64_t length = static_cast<int64_t>(edges.size());
      if (length < op->min_hops) return;
      Tuple result = tuple.Append(Value::Vertex(vertices.back()));
      if (emit_path) {
        result = result.Append(Value::MakePath(Path(vertices, edges)));
      }
      out.Apply(result, count);
    };
    std::function<void(VertexId, int64_t)> dfs = [&](VertexId at,
                                                     int64_t remaining) {
      emit();
      if (remaining <= 0) return;
      const std::vector<EdgeId>& incident =
          reversed ? graph_->InEdges(at) : graph_->OutEdges(at);
      for (EdgeId e : incident) {
        if (!type_ok(e) || !used.insert(e).second) continue;
        VertexId next =
            reversed ? graph_->EdgeSource(e) : graph_->EdgeTarget(e);
        vertices.push_back(next);
        edges.push_back(e);
        dfs(next, remaining - 1);
        vertices.pop_back();
        edges.pop_back();
        used.erase(e);
      }
    };
    dfs(source, limit);
  }
  return out;
}

Result<Bag> BaselineEvaluator::EvalJoinLike(const OpPtr& op) const {
  PGIVM_ASSIGN_OR_RETURN(Bag left, Eval(op->children[0]));
  PGIVM_ASSIGN_OR_RETURN(Bag right, Eval(op->children[1]));
  const Schema& lschema = op->children[0]->schema;
  const Schema& rschema = op->children[1]->schema;
  JoinLayout layout = JoinLayout::Make(lschema, rschema);

  std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>, TupleHash>
      right_index;
  for (const auto& [tuple, count] : right.counts()) {
    right_index[tuple.Project(layout.right_key)].emplace_back(tuple, count);
  }

  Bag out;
  for (const auto& [ltuple, lcount] : left.counts()) {
    Tuple key = ltuple.Project(layout.left_key);
    auto it = right_index.find(key);
    bool matched = it != right_index.end() && !it->second.empty();
    if (op->kind == OpKind::kAntiJoin) {
      if (!matched) out.Apply(ltuple, lcount);
      continue;
    }
    if (op->kind == OpKind::kSemiJoin) {
      if (matched) out.Apply(ltuple, lcount);
      continue;
    }
    if (matched) {
      for (const auto& [rtuple, rcount] : it->second) {
        std::vector<Value> values = ltuple.values();
        for (int i : layout.right_rest) {
          values.push_back(rtuple.at(static_cast<size_t>(i)));
        }
        out.Apply(Tuple(std::move(values)), lcount * rcount);
      }
    } else if (op->kind == OpKind::kLeftOuterJoin) {
      std::vector<Value> values = ltuple.values();
      for (size_t i = 0; i < layout.right_rest.size(); ++i) {
        values.push_back(Value::Null());
      }
      out.Apply(Tuple(std::move(values)), lcount);
    }
  }
  return out;
}

Result<Bag> BaselineEvaluator::EvalAggregate(const OpPtr& op) const {
  PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
  const Schema& in_schema = op->children[0]->schema;

  std::vector<BoundExpression> keys;
  for (const auto& [name, expr] : op->group_by) {
    PGIVM_ASSIGN_OR_RETURN(BoundExpression bound,
                           BoundExpression::Bind(expr, in_schema, graph_));
    keys.push_back(std::move(bound));
  }
  struct AggDef {
    std::string fn;
    bool star;
    bool distinct;
    std::optional<BoundExpression> arg;
  };
  std::vector<AggDef> defs;
  for (const auto& [name, expr] : op->aggregates) {
    AggDef def;
    def.fn = expr->name;
    def.star = expr->star;
    def.distinct = expr->distinct;
    if (!expr->star) {
      if (expr->children.size() != 1) {
        return Status::InvalidArgument(
            StrCat("aggregate ", expr->name, "() expects one argument"));
      }
      PGIVM_ASSIGN_OR_RETURN(
          BoundExpression bound,
          BoundExpression::Bind(expr->children[0], in_schema, graph_));
      def.arg = std::move(bound);
    }
    defs.push_back(std::move(def));
  }

  struct GroupData {
    int64_t rows = 0;
    std::vector<std::map<Value, int64_t>> values;  // per aggregate
  };
  std::map<std::vector<Value>, GroupData> groups;
  for (const auto& [tuple, count] : input.counts()) {
    std::vector<Value> key;
    key.reserve(keys.size());
    for (const BoundExpression& k : keys) key.push_back(k.Eval(tuple));
    GroupData& group = groups[key];
    if (group.values.empty()) group.values.resize(defs.size());
    group.rows += count;
    for (size_t i = 0; i < defs.size(); ++i) {
      if (defs[i].star) continue;
      Value v = defs[i].arg->Eval(tuple);
      if (!v.is_null()) group.values[i][v] += count;
    }
  }
  if (keys.empty() && groups.empty()) {
    GroupData& group = groups[{}];
    group.values.resize(defs.size());
  }

  Bag out;
  for (const auto& [key, group] : groups) {
    std::vector<Value> row = key;
    for (size_t i = 0; i < defs.size(); ++i) {
      const AggDef& def = defs[i];
      const std::map<Value, int64_t>& values = group.values[i];
      int64_t non_null = 0;
      for (const auto& [v, c] : values) non_null += c;
      if (def.fn == "count") {
        if (def.star) {
          row.push_back(Value::Int(group.rows));
        } else if (def.distinct) {
          row.push_back(Value::Int(static_cast<int64_t>(values.size())));
        } else {
          row.push_back(Value::Int(non_null));
        }
      } else if (def.fn == "sum" || def.fn == "avg") {
        double dsum = 0.0;
        int64_t isum = 0;
        bool saw_double = false;
        int64_t n = 0;
        for (const auto& [v, c] : values) {
          int64_t reps = def.distinct ? 1 : c;
          n += reps;
          if (v.is_int()) {
            isum += reps * v.AsInt();
          } else if (v.is_numeric()) {
            dsum += static_cast<double>(reps) * v.AsDouble();
            saw_double = true;
          }
        }
        if (def.fn == "sum") {
          row.push_back(saw_double
                            ? Value::Double(dsum + static_cast<double>(isum))
                            : Value::Int(isum));
        } else {
          row.push_back(n == 0 ? Value::Null()
                               : Value::Double(
                                     (dsum + static_cast<double>(isum)) /
                                     static_cast<double>(n)));
        }
      } else if (def.fn == "min") {
        row.push_back(values.empty() ? Value::Null() : values.begin()->first);
      } else if (def.fn == "max") {
        row.push_back(values.empty() ? Value::Null() : values.rbegin()->first);
      } else if (def.fn == "collect") {
        ValueList list;
        for (const auto& [v, c] : values) {
          int64_t reps = def.distinct ? 1 : c;
          for (int64_t r = 0; r < reps; ++r) list.push_back(v);
        }
        row.push_back(Value::List(std::move(list)));
      } else {
        return Status::InvalidArgument(
            StrCat("unknown aggregate '", def.fn, "'"));
      }
    }
    out.Apply(Tuple(std::move(row)), 1);
  }
  return out;
}

Result<Bag> BaselineEvaluator::EvalUnnest(const OpPtr& op) const {
  PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
  const Schema& in_schema = op->children[0]->schema;
  PGIVM_ASSIGN_OR_RETURN(
      BoundExpression collection,
      BoundExpression::Bind(op->unnest_expr, in_schema, graph_));
  std::vector<int> kept;
  for (size_t i = 0; i < in_schema.size(); ++i) {
    const std::string& name = in_schema.at(i).name;
    bool dropped = false;
    for (const std::string& d : op->unnest_drop_columns) {
      if (d == name) dropped = true;
    }
    if (!dropped) kept.push_back(static_cast<int>(i));
  }

  Bag out;
  for (const auto& [tuple, count] : input.counts()) {
    Value value = collection.Eval(tuple);
    if (value.is_null()) continue;
    Tuple base = tuple.Project(kept);
    if (value.is_list()) {
      for (const Value& element : value.AsList()) {
        out.Apply(base.Append(element), count);
      }
    } else {
      out.Apply(base.Append(value), count);
    }
  }
  return out;
}

Result<Bag> BaselineEvaluator::Eval(const OpPtr& op) const {
  switch (op->kind) {
    case OpKind::kUnit: {
      Bag out;
      out.Apply(Tuple(), 1);
      return out;
    }
    case OpKind::kGetVertices:
      return EvalGetVertices(op);
    case OpKind::kGetEdges:
      return EvalGetEdges(op);
    case OpKind::kPathJoin:
      return EvalPathJoin(op);
    case OpKind::kSelection: {
      PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
      PGIVM_ASSIGN_OR_RETURN(
          BoundExpression predicate,
          BoundExpression::Bind(op->predicate, op->children[0]->schema,
                                graph_));
      Bag out;
      for (const auto& [tuple, count] : input.counts()) {
        if (IsTrue(predicate.Eval(tuple))) out.Apply(tuple, count);
      }
      return out;
    }
    case OpKind::kProjection:
    case OpKind::kProduce: {
      PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
      std::vector<BoundExpression> columns;
      for (const auto& [name, expr] : op->projections) {
        PGIVM_ASSIGN_OR_RETURN(
            BoundExpression bound,
            BoundExpression::Bind(expr, op->children[0]->schema, graph_));
        columns.push_back(std::move(bound));
      }
      Bag out;
      for (const auto& [tuple, count] : input.counts()) {
        std::vector<Value> values;
        values.reserve(columns.size());
        for (const BoundExpression& column : columns) {
          values.push_back(column.Eval(tuple));
        }
        out.Apply(Tuple(std::move(values)), count);
      }
      return out;
    }
    case OpKind::kJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
      return EvalJoinLike(op);
    case OpKind::kUnion: {
      PGIVM_ASSIGN_OR_RETURN(Bag left, Eval(op->children[0]));
      PGIVM_ASSIGN_OR_RETURN(Bag right, Eval(op->children[1]));
      const Schema& lschema = op->children[0]->schema;
      const Schema& rschema = op->children[1]->schema;
      std::vector<int> reorder;
      for (const Attribute& attr : lschema.attributes()) {
        reorder.push_back(rschema.IndexOf(attr.name));
      }
      Bag out = std::move(left);
      for (const auto& [tuple, count] : right.counts()) {
        out.Apply(tuple.Project(reorder), count);
      }
      return out;
    }
    case OpKind::kDistinct: {
      PGIVM_ASSIGN_OR_RETURN(Bag input, Eval(op->children[0]));
      Bag out;
      for (const auto& [tuple, count] : input.counts()) {
        (void)count;
        out.Apply(tuple, 1);
      }
      return out;
    }
    case OpKind::kAggregate:
      return EvalAggregate(op);
    case OpKind::kUnnest:
      return EvalUnnest(op);
    case OpKind::kExpand:
      return Status::Internal(
          "Expand reached the baseline evaluator; run LowerToFra first");
  }
  return Status::Internal(StrCat("unhandled operator ",
                                 OpKindName(op->kind)));
}

}  // namespace pgivm
