#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "workload/social_network.h"

namespace pgivm {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  PropertyGraph graph;
  GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.vertex_count, 0u);
  EXPECT_EQ(stats.edge_count, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphStatsTest, CountsLabelsTypesAndKeys) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A", "Common"}, {{"x", Value::Int(1)}});
  VertexId b = graph.AddVertex({"B", "Common"},
                               {{"x", Value::Int(2)}, {"y", Value::Int(3)}});
  (void)graph.AddEdge(a, b, "T", {{"w", Value::Int(1)}}).value();
  (void)graph.AddEdge(a, b, "T").value();
  (void)graph.AddEdge(b, a, "U").value();

  GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.vertex_count, 2u);
  EXPECT_EQ(stats.edge_count, 3u);
  EXPECT_EQ(stats.vertices_per_label["Common"], 2u);
  EXPECT_EQ(stats.vertices_per_label["A"], 1u);
  EXPECT_EQ(stats.edges_per_type["T"], 2u);
  EXPECT_EQ(stats.edges_per_type["U"], 1u);
  EXPECT_EQ(stats.vertex_property_keys["x"], 2u);
  EXPECT_EQ(stats.vertex_property_keys["y"], 1u);
  EXPECT_EQ(stats.edge_property_keys["w"], 1u);
  EXPECT_EQ(stats.max_out_degree, 2u);  // a has two outgoing edges.
  EXPECT_EQ(stats.max_in_degree, 2u);   // b receives two.
  // Total degree = 2 * edges; averaged per vertex and halved = 1.5.
  EXPECT_DOUBLE_EQ(stats.avg_degree, 1.5);
}

TEST(GraphStatsTest, TracksRemovals) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"A"});
  EdgeId e = graph.AddEdge(a, b, "T").value();
  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  ASSERT_TRUE(graph.RemoveVertex(b).ok());
  GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.vertex_count, 1u);
  EXPECT_EQ(stats.edge_count, 0u);
  EXPECT_EQ(stats.vertices_per_label["A"], 1u);
  EXPECT_TRUE(stats.edges_per_type.empty());
}

TEST(GraphStatsTest, SocialWorkloadShape) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  SocialNetworkGenerator(config).Populate(&graph);
  GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.vertices_per_label["Person"], 20u);
  EXPECT_GT(stats.edges_per_type["REPLY"], 0u);
  EXPECT_GT(stats.vertex_property_keys["speaks"], 0u);
  EXPECT_GT(stats.avg_degree, 0.0);
}

}  // namespace
}  // namespace pgivm
