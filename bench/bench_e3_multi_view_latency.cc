// E3 — update latency as the number of registered views grows (the
// fraud-detection / monitoring deployment model from the paper's §1:
// many standing queries, every transaction must clear them all).
//
// Expected shape: latency grows roughly linearly with the number of views
// whose patterns the update touches, and stays near-flat for views it
// cannot affect (their input nodes filter the delta out immediately).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "engine/query_engine.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

std::vector<std::string> StandingQueries() {
  return {
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (m:Comm) RETURN m.lang AS lang, count(*) AS n",
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l",
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE a.country = c.country RETURN a, c",
      "MATCH (m:Post) WHERE m.length > 1000 RETURN m",
      "MATCH (u:Person) UNWIND u.speaks AS lang "
      "RETURN lang, count(*) AS speakers",
      "MATCH (c:Comm)-[:HAS_CREATOR]->(u:Person) RETURN u AS a, count(*) "
      "AS msgs",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang <> c.lang "
      "RETURN p, c",
      "MATCH (u:Person)-[:LIKES]->(m:Post)-[:REPLY]->(c:Comm) "
      "RETURN u, c",
      "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, count(*) AS degree",
      "MATCH (m:Comm) WHERE m.length < 50 RETURN m",
      "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country "
      "RETURN a, b",
      "MATCH (c:Comm) WHERE c.lang IN ['en', 'de'] RETURN c",
      "MATCH (u:Person)-[:LIKES]->(m:Post) WHERE m.length > 500 "
      "RETURN u, m",
      "MATCH t = (p:Post)-[:REPLY*1..3]->(c:Comm) RETURN p, t",
  };
}

void BM_E3_UpdateWithViews(benchmark::State& state) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = StandingQueries();
  for (int64_t i = 0; i < state.range(0); ++i) {
    views.push_back(
        engine.Register(catalog[static_cast<size_t>(i) % catalog.size()])
            .value());
  }
  for (auto _ : state) {
    generator.ApplyRandomUpdate(&graph);
  }
  int64_t total_rows = 0;
  for (const auto& view : views) total_rows += view->size();
  state.counters["views"] = static_cast<double>(views.size());
  state.counters["total_rows"] = static_cast<double>(total_rows);
}
BENCHMARK(BM_E3_UpdateWithViews)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(300);

// ---- batch-size sweep across a fixed view catalog --------------------------
//
// Fixed 8-view deployment; updates arrive as bursts of range(0) changes and
// range(1) picks the propagation strategy (0 = eager, 1 = batched). This is
// the monitoring scenario where transactions are ingested in bulk: batched
// propagation translates each burst once per network instead of cascading
// per change.

void BM_E3_BatchSweep(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  PropagationStrategy strategy = state.range(1) == 0
                                     ? PropagationStrategy::kEager
                                     : PropagationStrategy::kBatched;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.network.propagation = strategy;
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = StandingQueries();
  for (size_t i = 0; i < 8; ++i) {
    views.push_back(engine.Register(catalog[i]).value());
  }

  for (auto _ : state) {
    graph.BeginBatch();
    for (int64_t i = 0; i < batch_size; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
  }

  int64_t emitted = 0;
  for (const auto& view : views) {
    emitted += view->network().TotalEmittedEntries();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["emitted_total"] = static_cast<double>(emitted);
  state.SetLabel(PropagationStrategyName(strategy));
}
BENCHMARK(BM_E3_BatchSweep)
    ->ArgsProduct({{1, 16, 128, 1024}, {0, 1}})
    ->Iterations(20);

// ---- operator-state sharing sweep: views × overlap × sharing × threads -----
//
// The catalog deployment scenario: range(0) standing views are registered,
// cycling over the first range(1) queries of the pool (so overlap factor =
// views / range(1): dashboards registering the same standing query are
// common in monitoring fleets). range(2) toggles operator-state sharing and
// range(3) picks the wave executor: 1 = serial, n > 1 = parallel with n
// threads, 0 = parallel at hardware concurrency. Each iteration commits one
// 64-change batch, so items/s is the catalog's propagation throughput —
// the number the thread sweep scales. Reported counters: live Rete nodes,
// multi-view shared nodes, node-memory bytes (each node once), wave
// parallelism actually in effect, and the propagation volume of the timed
// stream (identical across thread counts: parallel waves are bit-identical
// to serial).

void BM_E3_CatalogSharingSweep(benchmark::State& state) {
  int64_t num_views = state.range(0);
  size_t pool = static_cast<size_t>(state.range(1));
  bool shared = state.range(2) == 1;
  int64_t threads = state.range(3);
  constexpr int kChangesPerBatch = 64;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.catalog.share_operator_state = shared;
  if (threads != 1) {
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = static_cast<int>(threads);
  }
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = StandingQueries();
  for (int64_t i = 0; i < num_views; ++i) {
    views.push_back(
        engine.Register(catalog[static_cast<size_t>(i) % pool]).value());
  }

  auto total_emitted = [&]() {
    if (shared) {
      const ReteNetwork* network = engine.catalog().shared_network();
      return network == nullptr ? int64_t{0} : network->TotalEmittedEntries();
    }
    int64_t total = 0;
    for (const auto& view : views) {
      total += view->network().TotalEmittedEntries();
    }
    return total;
  };

  int64_t emitted_before = total_emitted();
  for (auto _ : state) {
    graph.BeginBatch();
    for (int i = 0; i < kChangesPerBatch; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
  }
  int64_t emitted = total_emitted() - emitted_before;

  int parallelism = 1;
  if (shared && engine.catalog().shared_network() != nullptr) {
    parallelism = engine.catalog().shared_network()->executor_parallelism();
  } else if (!views.empty()) {
    parallelism = views.front()->network().executor_parallelism();
  }

  CatalogStats stats = engine.catalog().Stats();
  state.SetItemsProcessed(state.iterations() * kChangesPerBatch);
  state.counters["views"] = static_cast<double>(views.size());
  state.counters["nodes"] = static_cast<double>(stats.total_nodes);
  state.counters["shared_nodes"] = static_cast<double>(stats.shared_nodes);
  state.counters["mem_bytes"] = static_cast<double>(stats.memory_bytes);
  state.counters["emitted"] = static_cast<double>(emitted);
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel(std::string(shared ? "shared" : "unshared") + "/" +
                 (parallelism > 1 ? "parallel" : "serial"));
}
BENCHMARK(BM_E3_CatalogSharingSweep)
    // The PR-2 sharing matrix, serial executor.
    ->ArgsProduct({{4, 8, 16}, {2, 4, 8}, {0, 1}, {1}})
    // The wave-executor thread sweep over the 16-view shared catalog (the
    // fleet-maintenance scenario parallel waves target): serial vs 2/4/8
    // workers vs hardware concurrency (0). Wall-clock timing, so items/s
    // is the actual propagation throughput, not summed thread time.
    ->ArgsProduct({{16}, {4, 8}, {1}, {2, 4, 8, 0}})
    ->UseRealTime()
    ->Iterations(20);

// ---- canonical-normalization sharing sweep ----------------------------------
//
// Real standing-query fleets register the same logical query in different
// spellings: dashboards rename aliases, templating reorders MATCH clauses,
// users commute WHERE conjuncts. Structural sharing alone (PR 2) misses all
// of that; canonical plan normalization (PlanOptions::canonicalize) folds
// the spellings into one normal form before fingerprinting. range(0) views
// are registered cycling over three permuted spellings of each of four base
// queries; range(1) toggles canonicalization. Counters record the registry
// hit rate and the shared-node ratio — with canonicalization on, every
// spelling beyond the first of a base query is a 100% registry hit, so
// hit_rate and shared_ratio jump while nodes/mem_bytes drop. The timed
// loop commits 64-change bursts, making items/s comparable with the other
// E3 sweeps (fewer live nodes also means less propagation work).

std::vector<std::string> PermutedStandingQueries() {
  return {
      // Base query 1: alias rename / commuted equality.
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang "
      "RETURN x, y",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE c.lang = p.lang "
      "RETURN p, c",
      // Base query 2: MATCH part permutation / rename.
      "MATCH (u:Person)-[:LIKES]->(m:Post), (m)-[:REPLY]->(c:Comm) "
      "RETURN u, c",
      "MATCH (m)-[:REPLY]->(c:Comm), (u:Person)-[:LIKES]->(m:Post) "
      "RETURN u, c",
      "MATCH (fan:Person)-[:LIKES]->(msg:Post), (msg)-[:REPLY]->(r:Comm) "
      "RETURN fan AS u, r AS c",
      // Base query 3: commuted WHERE conjuncts / flipped literal side.
      "MATCH (m:Post) WHERE m.length > 100 AND m.lang = 'en' RETURN m",
      "MATCH (m:Post) WHERE m.lang = 'en' AND m.length > 100 RETURN m",
      "MATCH (q:Post) WHERE 'en' = q.lang AND q.length > 100 "
      "RETURN q AS m",
      // Base query 4: alias rename / commuted property equality.
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country "
      "RETURN a, b",
      "MATCH (p:Person)-[:KNOWS]->(q:Person) WHERE p.country = q.country "
      "RETURN p, q",
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE b.country = a.country "
      "RETURN a, b",
  };
}

void BM_E3_CanonicalSharingSweep(benchmark::State& state) {
  int64_t num_views = state.range(0);
  bool canonicalize = state.range(1) == 1;
  constexpr int kChangesPerBatch = 64;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.plan.canonicalize = canonicalize;
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = PermutedStandingQueries();
  for (int64_t i = 0; i < num_views; ++i) {
    views.push_back(
        engine.Register(catalog[static_cast<size_t>(i) % catalog.size()])
            .value());
  }

  for (auto _ : state) {
    graph.BeginBatch();
    for (int i = 0; i < kChangesPerBatch; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
  }

  CatalogStats stats = engine.catalog().Stats();
  double lookups =
      static_cast<double>(stats.registry_hits + stats.registry_misses);
  state.SetItemsProcessed(state.iterations() * kChangesPerBatch);
  state.counters["views"] = static_cast<double>(views.size());
  state.counters["nodes"] = static_cast<double>(stats.total_nodes);
  state.counters["shared_nodes"] = static_cast<double>(stats.shared_nodes);
  state.counters["mem_bytes"] = static_cast<double>(stats.memory_bytes);
  state.counters["hit_rate"] =
      lookups == 0.0 ? 0.0
                     : static_cast<double>(stats.registry_hits) / lookups;
  state.counters["shared_ratio"] = stats.SharingRatio();
  state.SetLabel(canonicalize ? "canonical" : "structural");
}
BENCHMARK(BM_E3_CanonicalSharingSweep)
    ->ArgsProduct({{6, 12, 24}, {0, 1}})
    ->Iterations(20);

// ---- registration latency into a live catalog ------------------------------
//
// The MV4PG concern: how long does Register() take once the catalog is
// already serving? range(0) standing views are registered and churned
// first; each timed iteration then registers one more view — a full
// structural duplicate of an existing one, the dashboard-clone case — and
// drops it again (untimed). range(1) toggles operator-state sharing and
// range(2) incremental priming (memory replay; ignored when unshared).
//
// Expected shape: shared+replay registration latency is flat in catalog
// size (replay work ∝ the new view's result size; `replayed` counter) and
// reads nothing from the graph (`graph_primed` = 0); shared+re-prime and
// unshared registration grow with catalog/graph size. BENCH_bench_e3_
// register.json tracks the three curves per PR.

void BM_E3_RegisterIntoLiveCatalog(benchmark::State& state) {
  int64_t catalog_size = state.range(0);
  bool shared = state.range(1) == 1;
  bool incremental = state.range(2) == 1;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.catalog.share_operator_state = shared;
  options.catalog.incremental_priming = incremental;
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = StandingQueries();
  for (int64_t i = 0; i < catalog_size; ++i) {
    views.push_back(
        engine.Register(catalog[static_cast<size_t>(i) % catalog.size()])
            .value());
  }
  // Warm the catalog: registration must splice into live, churned state.
  for (int i = 0; i < 64; ++i) generator.ApplyRandomUpdate(&graph);

  // A structural duplicate of the first standing query (fully shared under
  // sharing; rebuilt from the graph otherwise).
  const std::string newcomer = catalog[0];
  int64_t replayed = 0;
  int64_t graph_primed = 0;
  for (auto _ : state) {
    auto view = engine.Register(newcomer).value();
    state.PauseTiming();
    replayed += engine.catalog().last_prime_stats().replayed_entries;
    graph_primed += engine.catalog().last_prime_stats().graph_primed_entries;
    view.reset();  // keep the catalog at range(0) views for every iteration
    state.ResumeTiming();
  }

  CatalogStats stats = engine.catalog().Stats();
  state.counters["views"] = static_cast<double>(catalog_size);
  state.counters["nodes"] = static_cast<double>(stats.total_nodes);
  state.counters["replayed"] =
      benchmark::Counter(static_cast<double>(replayed),
                         benchmark::Counter::kAvgIterations);
  state.counters["graph_primed"] =
      benchmark::Counter(static_cast<double>(graph_primed),
                         benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(shared ? "shared" : "unshared") +
                 (shared ? (incremental ? "/replay" : "/reprime") : ""));
}
BENCHMARK(BM_E3_RegisterIntoLiveCatalog)
    // Catalog size sweep × {unshared, shared+full-reprime, shared+replay}.
    ->ArgsProduct({{1, 4, 8, 16}, {0}, {1}})
    ->ArgsProduct({{1, 4, 8, 16}, {1}, {0, 1}})
    ->Iterations(50);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
