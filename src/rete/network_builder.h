#ifndef PGIVM_RETE_NETWORK_BUILDER_H_
#define PGIVM_RETE_NETWORK_BUILDER_H_

#include <memory>
#include <vector>

#include "algebra/operator.h"
#include "graph/property_graph.h"
#include "rete/network.h"
#include "support/status.h"

namespace pgivm {

class NodeRegistry;

struct NetworkOptions {
  /// Fold unnest deltas per kept-column projection and emit element-level
  /// differences (the FGN behaviour). Off = the E4 ablation baseline.
  bool fine_grained_unnest = true;

  /// How deltas travel through the network (see PropagationStrategy).
  /// kBatched consolidates per-(node, port) queues between topological
  /// waves — the default; kEager is the seed's per-change recursion.
  PropagationStrategy propagation = PropagationStrategy::kBatched;

  /// How a topological wave's nodes are executed under kBatched (see
  /// ExecutorKind). kSerial is the default-compatible single-thread drain;
  /// kParallel distributes each wave over a persistent worker pool with
  /// bit-identical results. Ignored under kEager.
  ExecutorKind executor = ExecutorKind::kSerial;

  /// Total wave parallelism for ExecutorKind::kParallel, including the
  /// dispatching thread; 0 = the machine's hardware concurrency.
  int num_threads = 0;

  /// Work-size gate for parallel dispatch: a topological wave whose queued
  /// delta entries total fewer than this runs inline on the draining
  /// thread instead of being handed to the worker pool — waking workers
  /// costs more than delivering a near-empty wave (the single-change
  /// steady state of a serving catalog). 0 dispatches every multi-node
  /// wave. Purely a performance knob: results are bit-identical for any
  /// value. Ignored under kSerial / kEager.
  size_t parallel_min_wave_entries = 8;

  /// Work-size gate for morsel-style intra-node parallelism: a single node
  /// holding at least this many queued delta entries has its delivery
  /// split into key-partitioned morsels processed concurrently (and a
  /// graph delta with at least this many changes has its source
  /// translation partitioned the same way). 0 forces the morsel path for
  /// every eligible node — the test/CI setting; raising it keeps skew-free
  /// steady states on the cheaper whole-node path. Purely a performance
  /// knob: results are bit-identical for any value. Requires
  /// ExecutorKind::kParallel (no pool = no morsels); see also
  /// ApplyEnvMorselOverride / PGIVM_MORSEL.
  size_t morsel_min_node_entries = 1024;

  /// Caps how many partitions a morsel dispatch splits a node into. 0 =
  /// auto (the worker pool's parallelism, itself capped at kMorselShards);
  /// 1 disables morsel execution and parallel source translation entirely
  /// (the ablation baseline). Bit-identical results for any value.
  uint32_t morsel_partitions = 0;

  /// Delta payloads of this size or fewer bypass sort-based consolidation
  /// for a pairwise fast path (see Consolidate). Identical results for any
  /// value; 0 disables the fast path entirely.
  size_t consolidation_cutoff = kDefaultConsolidationCutoff;

  /// How many *previous* committed epochs each production keeps alive for
  /// concurrent readers, in addition to the current one (see
  /// ReteNetwork::set_epoch_retention). 0 retires an epoch as soon as the
  /// last reader unpins it.
  size_t epoch_retention = 0;

  /// Per-node/per-drain propagation profiling (see
  /// ReteNetwork::set_profiling): node profiles, drain/wave/serving
  /// histograms and Chrome-trace events. Off (the default) keeps every hot
  /// path free of clock reads — bench_e9_observability holds the
  /// profiling-off overhead under 2% on the e3 burst workload. Can also be
  /// toggled at runtime (QueryEngine::set_profiling) and overridden by the
  /// PGIVM_PROFILE environment variable (see ApplyEnvProfilingOverride).
  bool profiling = false;

  /// Capacity, in events, of each network's profiling trace buffer (plus
  /// the engine's ingest-span buffer). Events past capacity are dropped
  /// and counted, so a long profiled session truncates its trace instead
  /// of growing without bound.
  size_t trace_capacity = 1 << 16;
};

/// Returns `options` with the `PGIVM_THREADS` environment override applied:
/// when the variable is set to an integer n, n > 1 forces
/// ExecutorKind::kParallel with n threads and n <= 1 forces kSerial —
/// regardless of what the options said. A value that is not entirely an
/// integer ("8abc", "abc", "") or does not fit in int is *rejected* with a
/// stderr warning and the options pass through unchanged — a typo must not
/// silently pick some other thread count. This is the operator-level escape
/// hatch (and how CI runs the whole suite under a parallel executor). It
/// is applied exactly once per engine, at ViewCatalog::Create, so every
/// network the engine ever creates — shared or per-view, registered at any
/// time — resolves against the environment as it was at construction;
/// BuildNetwork and hand-wired ReteNetworks take options as-given.
NetworkOptions ApplyEnvExecutorOverride(NetworkOptions options);

/// Returns `options` with the `PGIVM_PROFILE` environment override applied:
/// an integer value forces NetworkOptions::profiling on (non-zero) or off
/// (zero) regardless of what the options said. Validated exactly like
/// PGIVM_THREADS — a value that is not entirely an integer or does not fit
/// in int is rejected with a stderr warning and the options pass through
/// unchanged. Applied once per engine, at ViewCatalog::Create, alongside
/// the executor override.
NetworkOptions ApplyEnvProfilingOverride(NetworkOptions options);

/// Returns `options` with the `PGIVM_MORSEL` environment override applied:
/// an integer n >= 0 sets NetworkOptions::morsel_min_node_entries to n
/// (0 = force the morsel path for every eligible node — how CI's TSAN job
/// exercises partitioned delivery on ordinary workloads); a negative n
/// sets morsel_partitions to 1, disabling morsel execution entirely.
/// Validated exactly like PGIVM_THREADS — a value that is not entirely an
/// integer or does not fit in int is rejected with a stderr warning and
/// the options pass through unchanged. Applied once per engine, at
/// ViewCatalog::Create, alongside the executor override.
NetworkOptions ApplyEnvMorselOverride(NetworkOptions options);

/// One view instantiated inside a (possibly multi-view) network: its
/// production root plus every Rete node the view references — shared
/// prefixes included. The ViewCatalog refcounts exactly this set.
///
/// `created` is the registry-miss partition of `nodes`: the nodes this
/// call actually constructed, in creation (bottom-up) order, production
/// last. `nodes` minus `created` are the registry hits — live nodes other
/// views already primed, whose memories the catalog replays into the new
/// consumers instead of re-reading the graph (ReteNetwork::PrimeNewNodes).
struct BuiltView {
  ProductionNode* production = nullptr;
  std::vector<ReteNode*> nodes;    // deduped, production included
  std::vector<ReteNode*> created;  // fresh subset, bottom-up, production last
};

/// Instantiates the FRA plan (paper step 4) as a Rete sub-network inside
/// `network`, which may already host other views. When `registry` is
/// non-null it is consulted per sub-plan: a fingerprint hit reuses the
/// existing nodes (and their memories) instead of constructing — the
/// operator-state sharing that turns a view catalog into one shared
/// dataflow graph. Downstream expressions are bound against the *plan's*
/// child schemas, which are positionally identical to any shared node's
/// output, so sharing is insensitive to query aliases.
///
/// On failure every node this call added is removed from `network` and
/// `registry` again; previously registered views are untouched.
///
/// Lowerings performed here:
///  * transitive join → Join(input, PathInputNode) — the path store is the
///    fused get-edges side of the paper's ./∗ operator;
///  * left outer join → Join ∪ (AntiJoin → null-pad Projection);
///  * Produce → Projection feeding a fresh ProductionNode (the view root;
///    productions are never shared).
Result<BuiltView> BuildViewInto(ReteNetwork* network, const OpPtr& plan,
                                const PropertyGraph* graph,
                                const NetworkOptions& options,
                                NodeRegistry* registry);

/// Single-view convenience: a fresh private network for `plan` (no
/// sharing). The network is built detached; call Attach() to start
/// maintenance.
Result<std::unique_ptr<ReteNetwork>> BuildNetwork(
    const OpPtr& plan, const PropertyGraph* graph,
    const NetworkOptions& options = {});

}  // namespace pgivm

#endif  // PGIVM_RETE_NETWORK_BUILDER_H_
