// Observability-layer tests: metrics primitives (counters, log2-bucket
// latency histograms, the engine-wide registry), trace export, per-node
// propagation profiling, EXPLAIN ANALYZE and the unified
// EngineMetricsSnapshot surface.
//
// The invariants under test:
//  * histogram bucket math and percentiles match exact first-principles
//    references (HistogramSnapshot::Percentile is specified bucket-exactly);
//  * profiling never changes results, and the per-node counters it collects
//    are identical under the serial and parallel wave executors;
//  * EXPLAIN ANALYZE annotates every resolvable operator with live node
//    statistics, is structurally stable across calls, and leaves the
//    catalog exactly as it found it;
//  * DumpTrace writes a Chrome-tracing-compatible JSON file;
//  * the snapshot surface agrees with the scattered legacy accessors it
//    supersedes.
//
// Labelled `observability` in CMake; CI's TSAN job runs it too (histogram
// and counter reads race real writers here).

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "support/metrics.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

/// Scoped PGIVM_PROFILE manipulation, mirroring ScopedThreadsEnv: the
/// override is read once at engine construction, so guarding the
/// constructor call is sufficient.
class ScopedProfileEnv {
 public:
  explicit ScopedProfileEnv(const char* value) {
    const char* old = getenv("PGIVM_PROFILE");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value == nullptr) {
      unsetenv("PGIVM_PROFILE");
    } else {
      setenv("PGIVM_PROFILE", value, 1);
    }
  }
  ~ScopedProfileEnv() {
    if (had_) {
      setenv("PGIVM_PROFILE", saved_.c_str(), 1);
    } else {
      unsetenv("PGIVM_PROFILE");
    }
  }

  ScopedProfileEnv(const ScopedProfileEnv&) = delete;
  ScopedProfileEnv& operator=(const ScopedProfileEnv&) = delete;

 private:
  std::string saved_;
  bool had_ = false;
};

// ---- histogram bucket math --------------------------------------------------

TEST(Histogram, BucketIndexMatchesLog2Definition) {
  // Bucket 0 holds <= 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(INT64_MAX),
            kHistogramBuckets - 1);
  // Exhaustive spot check against the definition for a dense range.
  for (int64_t v = 1; v <= 4096; ++v) {
    size_t expected = 1;
    while ((int64_t{1} << expected) <= v) ++expected;
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), expected) << "v=" << v;
  }
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 0);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(1), 1);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(2), 3);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(3), 7);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(10), 1023);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(kHistogramBuckets - 1),
            INT64_MAX);
}

TEST(Histogram, PercentilesAgainstExactReference) {
  LatencyHistogram hist;
  for (int64_t v = 1; v <= 100; ++v) hist.Record(v);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 5050);
  EXPECT_EQ(snap.max, 100);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
  // Rank ceil(0.5 * 100) = 50 → value 50 → bucket 6 ([32, 63]) → upper
  // bound 63 (below the observed max, no clamp).
  EXPECT_EQ(snap.P50(), 63);
  // Rank 95 → value 95 → bucket 7 ([64, 127]) → 127, clamped to max 100.
  EXPECT_EQ(snap.P95(), 100);
  EXPECT_EQ(snap.P99(), 100);
  // Rank ceil(0.25 * 100) = 25 → bucket 5 ([16, 31]) → 31.
  EXPECT_EQ(snap.Percentile(0.25), 31);
  EXPECT_EQ(snap.Percentile(1.0), 100);
}

TEST(Histogram, EmptyAndSingleSample) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot().P50(), 0);
  EXPECT_EQ(hist.Snapshot().count, 0);
  hist.Record(42);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.P50(), 42);  // bucket bound 63 clamps to the observed max
  EXPECT_EQ(snap.P99(), 42);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 10000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist] {
      for (int64_t i = 1; i <= kPerThread; ++i) hist.Record(i);
    });
  }
  // A racing reader: snapshots must never tear (TSAN-checked) and counts
  // only grow.
  int64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    int64_t count = hist.Snapshot().count;
    EXPECT_GE(count, last);
    last = count;
  }
  for (std::thread& writer : writers) writer.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(snap.max, kPerThread);
}

TEST(MetricsRegistry, StableRefsAndOrderedSnapshots) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("b.second");
  Counter& b = registry.GetCounter("a.first");
  EXPECT_EQ(&a, &registry.GetCounter("b.second"));  // stable address
  a.Add(2);
  b.Increment();
  registry.GetHistogram("lat").Record(5);

  auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");  // name order
  EXPECT_EQ(counters[0].second, 1);
  EXPECT_EQ(counters[1].first, "b.second");
  EXPECT_EQ(counters[1].second, 2);
  auto histograms = registry.HistogramValues();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].second.count, 1);
}

// ---- trace buffer / export --------------------------------------------------

TEST(Trace, BufferDropsBeyondCapacityAndCounts) {
  TraceBuffer buffer(2);
  EXPECT_TRUE(buffer.Append({"a", "c", 0, 1, 1, ""}));
  EXPECT_TRUE(buffer.Append({"b", "c", 1, 1, 1, ""}));
  EXPECT_FALSE(buffer.Append({"c", "c", 2, 1, 1, ""}));
  EXPECT_EQ(buffer.events().size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1);
}

TEST(Trace, WriteChromeTraceEscapesAndFormats) {
  TraceBuffer buffer(8);
  TraceEvent event;
  event.name = "weird \"name\"\nwith\tcontrol";
  event.start_ns = 1234567;  // 1234.567 us
  event.dur_ns = 890;
  event.tid = 7;
  event.args = "\"entries\":3";
  ASSERT_TRUE(buffer.Append(std::move(event)));

  std::string path = testing::TempDir() + "/pgivm_trace_test.json";
  Status status = WriteChromeTrace(path, {&buffer, nullptr});
  ASSERT_TRUE(status.ok()) << status;

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  std::string json = contents.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.890"), std::string::npos);
  EXPECT_NE(json.find("\\\"name\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"entries\":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, WriteToUnwritablePathFails) {
  TraceBuffer buffer(1);
  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir/trace.json", {&buffer})
                   .ok());
}

// ---- engine-level profiling -------------------------------------------------

/// Queries covering joins, aggregation, DISTINCT and undirected edges —
/// enough shared structure that the sharing registry resolves interior
/// operators for the EXPLAIN ANALYZE tests.
const std::vector<const char*>& ProfiledQueries() {
  static const std::vector<const char*> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c",
      "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b",
  };
  return queries;
}

struct ProfiledRun {
  std::vector<std::vector<Tuple>> rows;
  std::vector<ReteNetwork::NodeMetrics> nodes;
  EngineMetricsSnapshot snapshot;
};

/// Registers the query pool, churns the graph, and returns results plus
/// per-node metrics.
ProfiledRun RunProfiledWorkload(ExecutorKind executor, bool profiling) {
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 99;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.network.executor = executor;
  options.network.num_threads = 4;
  // Dispatch every multi-node wave so serial-vs-parallel actually differs
  // in execution, not just configuration.
  options.network.parallel_min_wave_entries = 0;
  options.network.profiling = profiling;
  QueryEngine engine(&graph, options);

  std::vector<std::shared_ptr<View>> views;
  for (const char* query : ProfiledQueries()) {
    views.push_back(engine.Register(query).value());
  }
  for (int i = 0; i < 40; ++i) generator.ApplyRandomUpdate(&graph);

  ProfiledRun run;
  for (const auto& view : views) run.rows.push_back(view->Snapshot());
  run.snapshot = engine.MetricsSnapshot();
  run.nodes = run.snapshot.nodes;
  return run;
}

TEST(Profiling, ResultsIdenticalOnAndOff) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  ProfiledRun off = RunProfiledWorkload(ExecutorKind::kSerial, false);
  ProfiledRun on = RunProfiledWorkload(ExecutorKind::kSerial, true);
  EXPECT_EQ(off.rows, on.rows);
  // Off: no clocks ran, so no node accumulated profile state.
  for (const auto& node : off.nodes) {
    EXPECT_EQ(node.activations, 0) << node.name;
    EXPECT_EQ(node.busy_ns, 0) << node.name;
  }
  // On: the workload drained through every level, so productions (at
  // least) activated.
  int64_t total_activations = 0;
  for (const auto& node : on.nodes) total_activations += node.activations;
  EXPECT_GT(total_activations, 0);
}

TEST(Profiling, NodeCountersIdenticalSerialVsParallel) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  ProfiledRun serial = RunProfiledWorkload(ExecutorKind::kSerial, true);
  ProfiledRun parallel = RunProfiledWorkload(ExecutorKind::kParallel, true);
  EXPECT_EQ(serial.rows, parallel.rows);
  ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
  // Wave scheduling is bit-identical, so the *logical* per-node counters
  // must agree exactly; only timings (busy_ns/last_ns) may differ.
  for (size_t i = 0; i < serial.nodes.size(); ++i) {
    const auto& s = serial.nodes[i];
    const auto& p = parallel.nodes[i];
    EXPECT_EQ(s.name, p.name);
    EXPECT_EQ(s.emitted_entries, p.emitted_entries) << s.name;
    EXPECT_EQ(s.activations, p.activations) << s.name;
    EXPECT_EQ(s.input_entries, p.input_entries) << s.name;
    EXPECT_EQ(s.output_entries, p.output_entries) << s.name;
    EXPECT_EQ(s.memory_bytes, p.memory_bytes) << s.name;
  }
  EXPECT_GT(parallel.snapshot.parallel_waves_dispatched, 0);
  EXPECT_EQ(serial.snapshot.parallel_waves_dispatched, 0);
}

TEST(Profiling, HistogramsAndTracePopulateWhileOn) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  ProfiledRun on = RunProfiledWorkload(ExecutorKind::kSerial, true);
  bool saw_drain = false;
  for (const auto& [name, hist] : on.snapshot.histograms) {
    if (name == "propagation.drain_ns") {
      saw_drain = hist.count > 0;
    }
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(on.snapshot.profiling);
  EXPECT_GT(on.snapshot.epochs_published, 0);
  // ToString renders every section without crashing and mentions nodes.
  std::string rendered = on.snapshot.ToString();
  EXPECT_NE(rendered.find("propagation:"), std::string::npos);
  EXPECT_NE(rendered.find("node "), std::string::npos);
}

TEST(Profiling, PinLatencyRecordedWhileOn) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN count(*) AS c");
  ASSERT_TRUE(view.ok()) << view.status();

  (void)(*view)->Pin();  // profiling off: not recorded
  engine.set_profiling(true);
  (void)(*view)->Pin();  // cached epoch
  graph.AddVertex({"A"});
  (void)(*view)->Pin();  // fresh epoch: builds the rendering
  engine.set_profiling(false);
  (void)(*view)->Pin();  // off again: not recorded

  HistogramSnapshot pin =
      engine.metrics().GetHistogram("serving.pin_ns").Snapshot();
  EXPECT_EQ(pin.count, 2);
}

TEST(Profiling, RuntimeToggleCoversLateNetworks) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  EngineOptions options;
  options.catalog.share_operator_state = false;  // one network per view
  QueryEngine engine(&graph, options);
  engine.set_profiling(true);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  // The per-view network was created after the toggle and must inherit it.
  graph.AddVertex({"A"});
  EngineMetricsSnapshot snap = engine.MetricsSnapshot();
  int64_t activations = 0;
  for (const auto& node : snap.nodes) activations += node.activations;
  EXPECT_GT(activations, 0);
}

// ---- EXPLAIN ANALYZE --------------------------------------------------------

std::string StripDigits(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!isdigit(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

TEST(ExplainAnalyze, AnnotatesOperatorsAndRestoresState) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 5;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  // A sibling view first, so the probe's interior operators resolve to
  // *shared* live nodes through the registry.
  auto sibling = engine.Register("MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b");
  ASSERT_TRUE(sibling.ok()) << sibling.status();
  const size_t views_before = engine.catalog().view_count();
  const bool profiling_before = engine.profiling();

  auto report = engine.ExplainAnalyze(
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b");
  ASSERT_TRUE(report.ok()) << report.status();
  // The production root and the shared interior both annotated, with the
  // full stat set.
  EXPECT_NE(report->find("[Production"), std::string::npos) << *report;
  EXPECT_NE(report->find("entries="), std::string::npos);
  EXPECT_NE(report->find("mem="), std::string::npos);
  EXPECT_NE(report->find("act="), std::string::npos);
  EXPECT_NE(report->find("time="), std::string::npos);
  EXPECT_NE(report->find("fp="), std::string::npos);
  // Interior operators resolved via the sibling's nodes: at least one
  // non-production kind appears in an annotation.
  EXPECT_TRUE(report->find("[Join") != std::string::npos ||
              report->find("[VertexInput") != std::string::npos ||
              report->find("[EdgeInput") != std::string::npos)
      << *report;

  // The probe view is gone and the profiling flag restored.
  EXPECT_EQ(engine.catalog().view_count(), views_before);
  EXPECT_EQ(engine.profiling(), profiling_before);

  // Structurally stable: a second run differs only in the live numbers.
  auto again = engine.ExplainAnalyze(
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(StripDigits(*report), StripDigits(*again));
  EXPECT_EQ(engine.catalog().view_count(), views_before);
}

TEST(ExplainAnalyze, CompileErrorsPropagateAndRestoreProfiling) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine.ExplainAnalyze("MATCH (n RETURN n").ok());
  EXPECT_FALSE(engine.profiling());
}

// ---- unified snapshot vs. legacy accessors ---------------------------------

TEST(MetricsSnapshot, AgreesWithLegacyAccessors) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 11;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  for (const char* query : ProfiledQueries()) {
    views.push_back(engine.Register(query).value());
  }
  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);

  EngineMetricsSnapshot snap = engine.MetricsSnapshot();
  CatalogStats stats = engine.catalog().Stats();
  EXPECT_EQ(snap.catalog.views, stats.views);
  EXPECT_EQ(snap.catalog.total_nodes, stats.total_nodes);
  EXPECT_EQ(snap.catalog.registry_hits, stats.registry_hits);
  EXPECT_EQ(snap.catalog.memory_bytes, stats.memory_bytes);
  EXPECT_EQ(snap.last_prime.replayed_entries,
            engine.catalog().last_prime_stats().replayed_entries);

  const ReteNetwork* network = engine.catalog().shared_network();
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(snap.deltas_processed, network->deltas_processed());
  EXPECT_EQ(snap.changes_processed, network->changes_processed());
  EXPECT_EQ(snap.total_emitted_entries, network->TotalEmittedEntries());
  EXPECT_EQ(snap.source_emitted_entries, network->SourceEmittedEntries());
  EXPECT_EQ(snap.commit_epoch, network->commit_epoch());
  EXPECT_EQ(snap.epochs_published, network->epochs_published());
  EXPECT_EQ(snap.ingest_mutations, engine.ingest_mutations());
  EXPECT_EQ(snap.ingest_batches, engine.ingest_batches());
  EXPECT_FALSE(snap.ingest_running);
  EXPECT_EQ(snap.nodes.size(), network->node_count());
}

// ---- trace export through the engine ---------------------------------------

TEST(DumpTrace, WritesChromeJsonCoveringIngestAndDrains) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv no_profile_env(nullptr);
  PropertyGraph graph;
  EngineOptions options;
  options.network.profiling = true;
  QueryEngine engine(&graph, options);
  auto view = engine.Register("MATCH (n:A) RETURN count(*) AS c");
  ASSERT_TRUE(view.ok()) << view.status();

  engine.StartIngest();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.SubmitAsync(
        [](PropertyGraph& g) { g.AddVertex({"A"}); }));
  }
  engine.StopIngest();

  std::string path = testing::TempDir() + "/pgivm_engine_trace.json";
  Status status = engine.DumpTrace(path);
  ASSERT_TRUE(status.ok()) << status;
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  std::string json = contents.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"drain\""), std::string::npos);
  EXPECT_NE(json.find("\"ingest.batch\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- PGIVM_PROFILE environment override ------------------------------------

TEST(ProfileEnv, IntegerValuesForceTheFlag) {
  ScopedThreadsEnv no_env(nullptr);
  NetworkOptions options;
  {
    ScopedProfileEnv env("1");
    EXPECT_TRUE(ApplyEnvProfilingOverride(options).profiling);
  }
  {
    ScopedProfileEnv env("0");
    options.profiling = true;
    EXPECT_FALSE(ApplyEnvProfilingOverride(options).profiling);
  }
}

TEST(ProfileEnv, MalformedValuesAreRejectedUnchanged) {
  ScopedThreadsEnv no_env(nullptr);
  NetworkOptions options;
  for (const char* bad : {"abc", "2x", "", "99999999999999999999"}) {
    ScopedProfileEnv env(bad);
    EXPECT_FALSE(ApplyEnvProfilingOverride(options).profiling) << bad;
    options.profiling = true;
    EXPECT_TRUE(ApplyEnvProfilingOverride(options).profiling) << bad;
    options.profiling = false;
  }
}

TEST(ProfileEnv, AppliedAtEngineConstruction) {
  ScopedThreadsEnv no_env(nullptr);
  ScopedProfileEnv env("1");
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_TRUE(engine.profiling());
}

TEST(MetricsSnapshot, FindCounterAndHistogramPointLookups) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  QueryEngine engine(&graph);
  engine.metrics().GetCounter("test.alpha").Add(3);
  engine.metrics().GetCounter("test.beta").Add(7);
  engine.metrics().GetHistogram("test.lat_ns").Record(1000);
  engine.metrics().GetHistogram("test.lat_ns").Record(3000);

  const EngineMetricsSnapshot snap = engine.MetricsSnapshot();
  const int64_t* alpha = snap.FindCounter("test.alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(*alpha, 3);
  const int64_t* beta = snap.FindCounter("test.beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(*beta, 7);
  EXPECT_EQ(snap.FindCounter("test.gamma"), nullptr);
  EXPECT_EQ(snap.FindCounter(""), nullptr);

  const HistogramSnapshot* hist = snap.FindHistogram("test.lat_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2);
  EXPECT_EQ(snap.FindHistogram("test.nope"), nullptr);

  // The pointers are into the snapshot copy: later recordings do not move
  // what an already-taken snapshot reports.
  engine.metrics().GetCounter("test.alpha").Add(100);
  EXPECT_EQ(*alpha, 3);
}

}  // namespace
}  // namespace pgivm
