#include "rete/unnest_node.h"

#include <map>
#include <unordered_map>

#include "support/string_util.h"

namespace pgivm {

void UnnestNode::ExpandInto(
    const Tuple& tuple, int64_t multiplicity,
    std::vector<std::pair<Value, int64_t>>& out) const {
  Value collection = collection_.Eval(tuple);
  if (collection.is_null()) return;  // UNWIND null produces no rows.
  if (collection.is_list()) {
    for (const Value& element : collection.AsList()) {
      out.emplace_back(element, multiplicity);
    }
    return;
  }
  out.emplace_back(std::move(collection), multiplicity);  // Scalar singleton.
}

void UnnestNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;

  if (!fine_grained_) {
    for (const DeltaEntry& entry : delta) {
      Tuple kept = entry.tuple.Project(kept_columns_);
      std::vector<std::pair<Value, int64_t>> elements;
      ExpandInto(entry.tuple, entry.multiplicity, elements);
      for (auto& [element, m] : elements) {
        out.push_back({kept.Append(std::move(element)), m});
      }
    }
    Emit(std::move(out));
    return;
  }

  // Fine-grained: fold the batch per kept projection, then emit only the
  // net per-element changes. Retract/assert pairs from a collection update
  // cancel except for the touched elements.
  std::unordered_map<Tuple, std::map<Value, int64_t>, TupleHash> folded;
  std::vector<Tuple> order;
  for (const DeltaEntry& entry : delta) {
    Tuple kept = entry.tuple.Project(kept_columns_);
    auto [it, inserted] = folded.emplace(kept, std::map<Value, int64_t>{});
    if (inserted) order.push_back(kept);
    std::vector<std::pair<Value, int64_t>> elements;
    ExpandInto(entry.tuple, entry.multiplicity, elements);
    for (auto& [element, m] : elements) it->second[element] += m;
  }
  for (const Tuple& kept : order) {
    for (const auto& [element, m] : folded[kept]) {
      if (m != 0) out.push_back({kept.Append(element), m});
    }
  }
  Emit(std::move(out));
}

std::string UnnestNode::DebugString() const {
  return StrCat("Unnest[", collection_.expr()->ToString(), "]",
                fine_grained_ ? " (fine-grained)" : "");
}

}  // namespace pgivm
