#ifndef PGIVM_BENCH_BENCH_MAIN_H_
#define PGIVM_BENCH_BENCH_MAIN_H_

// Shared benchmark entry point: every bench_* binary writes a machine-
// readable twin of its console output to BENCH_<name>.json in the working
// directory (google benchmark's JSON schema), so the perf trajectory can be
// tracked across PRs and uploaded as a CI artifact. An explicit
// --benchmark_out on the command line wins; all other flags pass through.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace pgivm {
namespace bench {

/// BENCH_<basename>.json, with a leading "bench_" stripped from the
/// executable name: ./build/bench_e3_multi_view_latency →
/// BENCH_e3_multi_view_latency.json.
inline std::string DefaultJsonPath(const char* argv0) {
  std::string name(argv0 == nullptr ? "" : argv0);
  size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::string prefix = "bench_";
  if (name.compare(0, prefix.size(), prefix) == 0) {
    name = name.substr(prefix.size());
  }
  if (name.empty()) name = "unnamed";
  return "BENCH_" + name + ".json";
}

inline int Main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=" + DefaultJsonPath(argc > 0 ? argv[0] : "");
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  ::benchmark::Initialize(&count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace bench
}  // namespace pgivm

#define PGIVM_BENCHMARK_MAIN()                                    \
  int main(int argc, char** argv) {                               \
    return ::pgivm::bench::Main(argc, argv);                      \
  }                                                               \
  static_assert(true, "require a trailing semicolon")

#endif  // PGIVM_BENCH_BENCH_MAIN_H_
