#ifndef PGIVM_RETE_AGGREGATE_NODE_H_
#define PGIVM_RETE_AGGREGATE_NODE_H_

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rete/expression_eval.h"
#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// One aggregate function instance of a γ operator.
struct AggregateSpec {
  enum class Kind { kCountStar, kCount, kSum, kMin, kMax, kAvg, kCollect };

  Kind kind = Kind::kCountStar;
  bool distinct = false;
  /// Argument expression; unset for kCountStar.
  std::optional<BoundExpression> arg;

  /// Parses a bound aggregate call ("count", "sum", ...) into a spec.
  static Result<AggregateSpec> Make(const ExprPtr& call, const Schema& input,
                                    const PropertyGraph* graph);
};

/// γ — incremental grouping aggregation. Maintains per-group state that
/// supports retraction (running sums/counts plus a value multiset for
/// min/max/collect and DISTINCT variants) and emits −old/+new output rows
/// for groups whose rendered row changed.
///
/// Cypher semantics: a key-less aggregation always has exactly one output
/// row, even over empty input (count = 0, sum = 0, min/max/avg = null,
/// collect = []); EmitInitial() publishes that row when the network starts.
/// Null aggregate arguments are skipped.
class AggregateNode : public ReteNode {
 public:
  AggregateNode(Schema schema, std::vector<BoundExpression> keys,
                std::vector<AggregateSpec> aggregates);

  void OnDelta(int port, const Delta& delta) override;

  /// Keyed aggregations partition by group key (equal keys share one
  /// partition, so each group's state has a single writer). A key-less
  /// aggregation has one group — nothing to split.
  MorselKind morsel_kind() const override {
    return keys_.empty() ? MorselKind::kNone : MorselKind::kKeyed;
  }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  /// Emits the empty-input row of a key-less aggregation. Called once by
  /// the network before any input delta.
  void EmitInitial() override;

  /// Replays the rendered row of every live group (a key-less aggregation
  /// always has exactly one, even over empty input).
  bool ReplayOutput(Delta& out) const override;

  void Reset() override { groups_.clear(); }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override { return "Aggregate"; }
  const char* KindName() const override { return "Aggregate"; }

 private:
  /// Retractable state of one aggregate function within one group.
  struct AggState {
    std::map<Value, int64_t> values;  // multiset of non-null arguments
    int64_t non_null_count = 0;
    int64_t int_sum = 0;
    double double_sum = 0.0;
    int64_t double_count = 0;

    void Apply(const Value& v, int64_t multiplicity);
    Value Render(const AggregateSpec& spec, int64_t group_rows) const;
  };

  struct GroupState {
    int64_t total_rows = 0;
    std::vector<AggState> aggs;
  };

  Tuple KeyOf(const Tuple& input) const;
  Tuple RenderRow(const Tuple& key, const GroupState& group) const;

  void ProcessEntries(const Delta& delta, const uint32_t* map,
                      uint32_t partition, Delta& out);

  std::vector<BoundExpression> keys_;
  std::vector<AggregateSpec> aggregates_;
  /// Group key -> state, sharded by key hash so morsel partitions (which
  /// own disjoint key sets) mutate disjoint shards.
  ShardedTupleMap<GroupState> groups_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_AGGREGATE_NODE_H_
