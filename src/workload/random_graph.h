#ifndef PGIVM_WORKLOAD_RANDOM_GRAPH_H_
#define PGIVM_WORKLOAD_RANDOM_GRAPH_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "support/rng.h"

namespace pgivm {

/// Random property graph + random update stream, used by the differential
/// (fuzz) tests: after every update, the Rete views must equal a fresh
/// baseline evaluation.
struct RandomGraphConfig {
  int64_t initial_vertices = 30;
  int64_t initial_edges = 60;
  uint64_t seed = 1;
  std::vector<std::string> labels = {"A", "B", "C"};
  std::vector<std::string> types = {"R", "S"};
  std::vector<std::string> keys = {"x", "y", "tags"};
  int64_t value_range = 5;  // property values drawn from [0, value_range)
};

class RandomGraphGenerator {
 public:
  explicit RandomGraphGenerator(const RandomGraphConfig& config)
      : config_(config), rng_(config.seed) {}

  void Populate(PropertyGraph* graph);

  /// Applies one random mutation: vertex/edge insertion or deletion,
  /// scalar property write/erase, list-property element append/removal,
  /// or label add/remove. Never fails (skips impossible choices).
  void ApplyRandomUpdate(PropertyGraph* graph);

  const std::vector<VertexId>& live_vertices() const { return vertices_; }

 private:
  Value RandomScalar();
  VertexId RandomVertex();

  RandomGraphConfig config_;
  Rng rng_;
  std::vector<VertexId> vertices_;
  std::vector<EdgeId> edges_;
};

}  // namespace pgivm

#endif  // PGIVM_WORKLOAD_RANDOM_GRAPH_H_
