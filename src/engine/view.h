#ifndef PGIVM_ENGINE_VIEW_H_
#define PGIVM_ENGINE_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "rete/network.h"

namespace pgivm {

class ViewCatalog;

/// A live, incrementally maintained query result.
///
/// Obtained from QueryEngine::Register. The view stays consistent with its
/// graph after every committed change; reading it never triggers
/// re-evaluation. A view is a handle into its engine's ViewCatalog: with
/// operator-state sharing (the default) its Rete nodes live inside the
/// catalog's shared network, possibly serving sibling views too; with
/// sharing disabled the view owns a private network (the seed behaviour).
/// Destroying the view deregisters it — shared nodes survive as long as a
/// sibling still references them.
///
/// Registration into a live catalog is primed incrementally: node memories
/// the new view shares are replayed into its consumers instead of
/// re-reading the graph — prime_stats() reports the split. Sibling views
/// and their listeners observe nothing.
///
/// Ordering note (the paper's ORD restriction): the maintained result is a
/// bag — no order is maintained. Snapshot() sorts rows only for
/// presentation/determinism and applies the query's SKIP/LIMIT at that
/// moment; the sorted rows are cached and reused until the production
/// signals a change (its version counter moves), so polling an unchanged
/// view is O(copy), not O(n log n).
///
/// Thread-safety: read the view from the thread that applies graph deltas
/// (reads between deltas see a consistent, current bag; nothing locks).
/// Listener callbacks run on that same thread — during parallel waves
/// they are deferred to the wave barrier, never concurrent.
///
/// Lifecycle: destroying the View deregisters it from the catalog
/// (refcounted under sharing). The View keeps its catalog — and with it
/// the shared network — alive past engine destruction; only the graph
/// must outlive everything.
class View {
 public:
  ~View();

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  /// Output column names, in RETURN order.
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Current rows, multiplicities expanded, sorted, SKIP/LIMIT applied.
  std::vector<Tuple> Snapshot() const;

  /// The maintained bag itself (tuple -> multiplicity), unsorted.
  const Bag& results() const { return production_->results(); }

  /// Total number of result rows (with duplicates).
  int64_t size() const { return results().total_count(); }

  /// Change notifications; listeners receive normalized deltas.
  void AddListener(ViewChangeListener* listener) {
    production_->AddListener(listener);
  }
  void RemoveListener(ViewChangeListener* listener) {
    production_->RemoveListener(listener);
  }

  const std::string& query() const { return query_; }

  /// Compiled plans, for inspection/tests: the GRA tree (paper step 1) and
  /// the lowered FRA plan (steps 2–3) the network implements.
  const OpPtr& gra_plan() const { return gra_; }
  const OpPtr& fra_plan() const { return fra_; }

  /// Runtime propagation strategy of the underlying network (from
  /// EngineOptions::network at registration time).
  PropagationStrategy propagation() const { return network_->propagation(); }

  /// Wave executor of the underlying network (after the PGIVM_THREADS
  /// environment override; see NetworkOptions::executor).
  ExecutorKind executor() const { return network_->executor(); }

  /// Memory held by the Rete node memories this view references. Under
  /// sharing, nodes serving sibling views too are counted in full; the
  /// catalog's Stats().memory_bytes deduplicates and
  /// MarginalMemoryBytes() isolates this view's exclusive slice.
  size_t ApproxMemoryBytes() const;

  /// How this view's registration was primed: tuples replayed from
  /// sibling-primed node memories vs. tuples read from the graph by fresh
  /// source nodes, plus the fresh-node/replay-edge partition. A fully
  /// shared registration into a live catalog reports
  /// `graph_primed_entries == 0` — its cost is independent of both the
  /// graph and the catalog size.
  const ReteNetwork::PrimeStats& prime_stats() const { return prime_stats_; }

  /// Per-node diagnostics of the underlying network (under sharing: the
  /// whole catalog network this view lives in).
  std::string NetworkDebugString() const { return network_->DebugString(); }

  const ReteNetwork& network() const { return *network_; }

 private:
  friend class QueryEngine;
  friend class ViewCatalog;
  View() = default;

  std::string query_;
  OpPtr gra_;
  OpPtr fra_;
  /// Keeps the catalog — and with it the shared network — alive even if
  /// the engine is destroyed first. ~View deregisters through it.
  std::shared_ptr<ViewCatalog> catalog_;
  /// Sharing disabled: the view's private network (seed behaviour).
  std::unique_ptr<ReteNetwork> owned_network_;
  /// The network the view's nodes live in (owned_network_.get() or the
  /// catalog's shared network).
  ReteNetwork* network_ = nullptr;
  /// This view's root; never shared between views.
  ProductionNode* production_ = nullptr;
  std::vector<std::string> columns_;
  int64_t skip_ = 0;
  int64_t limit_ = -1;
  /// Replayed-vs-graph-primed accounting of this view's registration.
  ReteNetwork::PrimeStats prime_stats_;

  /// Snapshot() cache, valid while the production's version is unchanged.
  mutable std::vector<Tuple> snapshot_cache_;
  mutable uint64_t snapshot_version_ = 0;
  mutable bool snapshot_valid_ = false;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_VIEW_H_
