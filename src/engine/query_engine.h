#ifndef PGIVM_ENGINE_QUERY_ENGINE_H_
#define PGIVM_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algebra/passes/pass_manager.h"
#include "catalog/view_catalog.h"
#include "engine/view.h"
#include "graph/property_graph.h"
#include "rete/network_builder.h"
#include "support/metrics.h"
#include "support/status.h"

namespace pgivm {

/// One coherent point-in-time copy of every statistic the engine keeps —
/// the unified observability surface. Supersedes the scattered accessors
/// (ViewCatalog::Stats, last_prime_stats, the ReteNetwork counter getters,
/// ingest_mutations/batches), which remain as thin compatibility wrappers
/// over the same state. Propagation totals are summed across every live
/// network (one shared network under sharing, one per view without).
///
/// Obtain via QueryEngine::MetricsSnapshot() on the writer thread; the
/// returned value is a plain copy, safe to keep and read anywhere.
struct EngineMetricsSnapshot {
  /// View/sharing/memory accounting (== ViewCatalog::Stats()).
  CatalogStats catalog;
  /// Priming split of the most recent registration.
  ReteNetwork::PrimeStats last_prime;

  // Propagation totals, summed across live networks.
  int64_t deltas_processed = 0;
  int64_t changes_processed = 0;
  int64_t total_emitted_entries = 0;
  int64_t source_emitted_entries = 0;
  int64_t parallel_waves_dispatched = 0;
  /// Waves in which at least one hot node's delivery was split into
  /// key-partitioned morsels (see NetworkOptions::morsel_min_node_entries).
  int64_t morsel_waves_dispatched = 0;
  int64_t epochs_published = 0;
  /// Highest committed epoch across networks.
  uint64_t commit_epoch = 0;

  // Serving-path ingest totals (== ingest_mutations()/ingest_batches()).
  int64_t ingest_mutations = 0;
  int64_t ingest_batches = 0;
  bool ingest_running = false;

  /// Whether profiling was on when the snapshot was taken. Node profiles
  /// and the registry instruments below only advance while it is on.
  bool profiling = false;

  /// Per-node propagation profiles (name, kind, level, entry counts,
  /// memory, busy time), across every live network.
  std::vector<ReteNetwork::NodeMetrics> nodes;

  /// Engine-wide named counters and histograms (propagation.*, serving.*,
  /// ingest.*, and workload instruments like snb.*), in name order.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Point lookups into the instrument lists (binary search — the lists
  /// are in name order). Null when no instrument of that name existed at
  /// snapshot time. Pointers are into this snapshot: they stay valid as
  /// long as the snapshot itself, and never see later updates.
  const int64_t* FindCounter(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// Multi-line human-readable rendering (totals, then instruments, then
  /// per-node profiles when profiling is on).
  std::string ToString() const;
};

/// Engine-wide configuration: plan lowering and runtime flags. Defaults are
/// the paper's full pipeline; the ablation benchmarks flip individual flags.
struct EngineOptions {
  PlanOptions plan;
  NetworkOptions network;
  CatalogOptions catalog;

  /// Capacity of the serving ingest queue (see QueryEngine::SubmitAsync):
  /// mutations queued beyond this block their submitter until the ingest
  /// thread catches up — bounded-queue backpressure instead of unbounded
  /// buffering. Values below 1 are clamped to 1.
  size_t ingest_queue_depth = 256;
};

/// Front door of the library: compiles openCypher queries and keeps their
/// results incrementally maintained against one PropertyGraph.
///
/// Example:
///   PropertyGraph graph;
///   QueryEngine engine(&graph);
///   auto view = engine.Register(
///       "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
///       "WHERE p.lang = c.lang RETURN p, t");
///   ...mutate graph; (*view)->Snapshot() is always current...
///
/// The engine compiles queries and delegates view lifecycle to its
/// ViewCatalog: with operator-state sharing enabled (the default) all
/// registered views live inside one shared Rete network whose structurally
/// identical sub-plans are instantiated once; with sharing disabled each
/// View owns a private network (the seed behaviour). Views keep the catalog
/// alive, so they outlive the engine safely.
class QueryEngine {
 public:
  // Constructor and destructor are out of line: the ingest session member
  // is an incomplete type here.
  explicit QueryEngine(PropertyGraph* graph, EngineOptions options = {});

  /// Stops a running ingest session.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Compiles `cypher` through the paper's pipeline (parse → GRA → NRA →
  /// FRA → Rete) and attaches the resulting view to the graph, priming it
  /// with the current graph content. `$name` parameters are substituted
  /// from `parameters` at compile time (a view is specific to one binding).
  Result<std::shared_ptr<View>> Register(std::string_view cypher,
                                         const ValueMap& parameters = {});

  /// One-shot, non-incremental evaluation (the baseline strategy): compiles
  /// the same plan and interprets it against the current graph. Returns
  /// sorted rows with SKIP/LIMIT applied.
  Result<std::vector<Tuple>> EvaluateOnce(
      std::string_view cypher, const ValueMap& parameters = {}) const;

  /// Compiles without instantiating a network; returns the FRA plan (for
  /// plan inspection, tests and the baseline benchmarks).
  Result<OpPtr> Compile(std::string_view cypher,
                        const ValueMap& parameters = {}) const;

  /// Human-readable compilation report: the GRA tree (paper step 1) and the
  /// lowered FRA plan (steps 2–3) side by side.
  Result<std::string> Explain(std::string_view cypher,
                              const ValueMap& parameters = {}) const;

  /// EXPLAIN ANALYZE: registers `cypher` against the live catalog (with
  /// profiling temporarily enabled if it was off), then renders its FRA
  /// plan with each operator annotated by the *live* Rete node it resolved
  /// to — entries emitted, consolidated input/output entry counts,
  /// activations, memory bytes and busy time, all populated by the
  /// registration's priming propagation and whatever the catalog has
  /// processed since. Shared-catalog mode resolves interior operators
  /// through the sharing registry's fingerprints, so an operator served by
  /// a sibling view's node shows that node's lifetime statistics — the
  /// annotation makes sharing visible. Without sharing only the
  /// production root can be resolved and the report says so.
  ///
  /// The probe view is deregistered before returning (refcounts restore,
  /// sibling views are untouched), and the profiling flag is restored.
  /// Writer-thread only, like Register.
  Result<std::string> ExplainAnalyze(std::string_view cypher,
                                     const ValueMap& parameters = {});

  /// One coherent copy of every engine statistic — see
  /// EngineMetricsSnapshot. Writer-thread only (it walks the catalog's
  /// network list); the individual counters it aggregates remain readable
  /// from any thread through their own accessors.
  EngineMetricsSnapshot MetricsSnapshot() const;

  /// Runtime switch for per-node/per-drain propagation profiling across
  /// the whole engine (every live network plus ones registered later, the
  /// serving pin path and the ingest spans). Writer-thread only; off by
  /// default (NetworkOptions::profiling, overridable via PGIVM_PROFILE).
  void set_profiling(bool on) { catalog_->SetProfiling(on); }
  bool profiling() const { return catalog_->profiling(); }

  /// The engine-wide metrics registry (counter/histogram reads are safe
  /// from any thread).
  MetricsRegistry& metrics() const { return catalog_->metrics(); }

  /// Writes every trace buffer the engine accumulated while profiling —
  /// each network's propagation spans plus the ingest thread's batch
  /// spans — as one Chrome tracing / Perfetto-compatible JSON file.
  /// Writer-thread only, and must not race a running ingest session
  /// (StopIngest first): trace buffers are single-writer.
  Status DumpTrace(const std::string& path) const;

  /// One graph mutation submitted through the ingest queue; runs on the
  /// ingest thread, inside a BeginBatch/CommitBatch bracket, against the
  /// engine's graph.
  using GraphMutation = std::function<void(PropertyGraph&)>;

  /// Starts the serving ingest thread: mutations submitted via
  /// SubmitAsync — from any number of threads — are coalesced into
  /// batches (everything queued when the thread comes around) and each
  /// batch is applied under one BeginBatch/CommitBatch, i.e. one graph
  /// delta, one propagation drain, one committed epoch. While ingest is
  /// running the ingest thread *is* the writer thread: the caller must
  /// not mutate the graph or register/deregister views directly until
  /// StopIngest() returns. Readers (View::Pin/Snapshot/size) are
  /// unaffected and free on any thread. No-op if already running.
  void StartIngest();

  /// Closes the queue, applies whatever is still queued, and joins the
  /// ingest thread. After it returns the calling thread is the writer
  /// thread again. No-op if not running. Called from the destructor.
  void StopIngest();

  bool ingest_running() const { return ingest_ != nullptr; }

  /// Queues `mutation` for the ingest thread, blocking while the queue is
  /// at EngineOptions::ingest_queue_depth (backpressure). Safe from any
  /// number of threads *within* an ingest session; submitters must be
  /// quiesced (joined or otherwise done) before StopIngest() or engine
  /// destruction tears the session down. Returns false — without running
  /// the mutation — when ingest is not running or is shutting down.
  bool SubmitAsync(GraphMutation mutation);

  /// Lifetime counts across ingest sessions: mutations applied, and the
  /// BeginBatch/CommitBatch batches they were coalesced into. Safe from
  /// any thread, including concurrently with a running ingest session.
  ///
  /// Deprecated surface: prefer QueryEngine::MetricsSnapshot(), which
  /// reports the same totals (ingest_mutations/ingest_batches) alongside
  /// every other engine statistic. Kept as thin wrappers.
  int64_t ingest_mutations() const;
  int64_t ingest_batches() const;

  PropertyGraph* graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The view catalog: registered-view bookkeeping, node-sharing registry
  /// statistics and per-view memory attribution.
  ViewCatalog& catalog() { return *catalog_; }
  const ViewCatalog& catalog() const { return *catalog_; }

 private:
  /// Live ingest state (queue + thread + counters); null while not
  /// serving. Defined in query_engine.cc.
  struct Ingest;

  PropertyGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<ViewCatalog> catalog_;
  std::unique_ptr<Ingest> ingest_;
  /// Lifetime ingest volume, advanced by the ingest thread per committed
  /// batch. Lives on the engine (not on the Ingest session) and is atomic
  /// so any thread may poll ingest_mutations()/ingest_batches() while a
  /// session runs, starts, or stops on the writer thread.
  std::atomic<int64_t> ingest_mutations_done_{0};
  std::atomic<int64_t> ingest_batches_done_{0};
  /// Ingest-thread trace spans (one "batch" event per committed batch
  /// while profiling); created at the first StartIngest, appended only by
  /// the ingest thread, read by DumpTrace between sessions.
  std::unique_ptr<TraceBuffer> ingest_trace_;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_QUERY_ENGINE_H_
