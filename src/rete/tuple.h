#ifndef PGIVM_RETE_TUPLE_H_
#define PGIVM_RETE_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "value/value.h"

namespace pgivm {

/// Immutable row of Values with a cached hash. Copies are cheap (shared
/// storage) — node memories hold millions of copies in large networks.
class Tuple {
 public:
  /// Empty tuple (the Unit relation's single row).
  Tuple() : Tuple(std::vector<Value>{}) {}

  explicit Tuple(std::vector<Value> values);

  size_t size() const { return values_->size(); }
  const Value& at(size_t i) const { return (*values_)[i]; }
  const std::vector<Value>& values() const { return *values_; }

  /// New tuple holding the columns at `indices`, in that order. The result
  /// hash is folded while the columns are gathered — one pass, one
  /// allocation.
  Tuple Project(const std::vector<int>& indices) const;

  /// Hash that Project(indices) would cache, without materializing the
  /// projected tuple — the morsel partition maps call this once per delta
  /// entry, so it must not allocate.
  size_t HashProjected(const std::vector<int>& indices) const;

  /// New tuple: this tuple's columns followed by `suffix`'s. Storage is
  /// reserved to the exact final width and the hash continues incrementally
  /// from this tuple's cached hash (the tuple hash is a left fold over the
  /// column hashes), so neither side is re-hashed.
  Tuple Concat(const Tuple& suffix) const;

  /// New tuple: this tuple's columns followed by `suffix`'s columns at
  /// `indices`, in that order — the join-delivery combination (left row +
  /// right-only columns) as one reserved allocation with an incremental
  /// hash, instead of Concat(suffix.Project(indices))'s two.
  Tuple ConcatProjected(const Tuple& suffix,
                        const std::vector<int>& indices) const;

  /// New tuple with one extra column appended (incremental hash).
  Tuple Append(Value v) const;

  /// New tuple with column `i` replaced.
  Tuple WithColumn(size_t i, Value v) const;

  size_t Hash() const { return hash_; }

  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    if (a.hash_ != b.hash_ || a.size() != b.size()) return false;
    return *a.values_ == *b.values_;
  }

  /// Lexicographic total order (for deterministic snapshots).
  static int Compare(const Tuple& a, const Tuple& b);

 private:
  /// Trusted constructor for the derivation helpers above: `hash` must be
  /// exactly what hashing `values` from scratch would produce.
  Tuple(std::vector<Value> values, size_t hash)
      : values_(std::make_shared<const std::vector<Value>>(std::move(values))),
        hash_(hash) {}

  std::shared_ptr<const std::vector<Value>> values_;
  size_t hash_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace pgivm

#endif  // PGIVM_RETE_TUPLE_H_
