// Direct unit tests of the graph-boundary nodes (◯ and ⇑): label subset
// matching, extract maintenance under property/label churn, orientation
// handling, and batch consistency — the trickiest delta-translation logic.

#include "rete/input_node.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

class SinkNode : public ReteNode {
 public:
  SinkNode() : ReteNode(Schema{}) {}
  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    for (const DeltaEntry& entry : delta) {
      bag.Apply(entry.tuple, entry.multiplicity);
      ++entries_seen;
    }
  }
  std::string DebugString() const override { return "Sink"; }
  Bag bag;
  int entries_seen = 0;
};

/// Forwards graph changes into one source node, like the network does.
class Adapter : public GraphListener {
 public:
  explicit Adapter(GraphSourceNode* node) : node_(node) {}
  void OnGraphDelta(const GraphDelta& delta) override {
    for (const GraphChange& change : delta.changes) {
      node_->HandleChange(change);
    }
  }

 private:
  GraphSourceNode* node_;
};

PropertyExtract PropExtract(const std::string& var, const std::string& key) {
  return {PropertyExtract::What::kProperty, var, key,
          "#" + var + "." + key};
}

// ---- VertexInputNode -------------------------------------------------------

struct VertexFixture {
  VertexFixture(std::vector<std::string> labels,
                std::vector<PropertyExtract> extracts) {
    Schema schema({{"v", Attribute::Kind::kVertex}});
    for (const PropertyExtract& e : extracts) {
      schema.Add({e.column_name, Attribute::Kind::kValue});
    }
    node = std::make_unique<VertexInputNode>(schema, &graph,
                                             std::move(labels),
                                             std::move(extracts));
    node->AddOutput(&sink, 0);
    adapter = std::make_unique<Adapter>(node.get());
    graph.AddListener(adapter.get());
  }

  PropertyGraph graph;
  SinkNode sink;
  std::unique_ptr<VertexInputNode> node;
  std::unique_ptr<Adapter> adapter;
};

TEST(VertexInputNodeTest, LabelSubsetSemantics) {
  VertexFixture f({"A", "B"}, {});
  f.graph.AddVertex({"A"});            // Missing B.
  f.graph.AddVertex({"A", "B"});       // Match.
  f.graph.AddVertex({"A", "B", "C"});  // Superset: match.
  EXPECT_EQ(f.sink.bag.total_count(), 2);
}

TEST(VertexInputNodeTest, LabelChurnTogglesMembership) {
  VertexFixture f({"Hot"}, {});
  VertexId v = f.graph.AddVertex({"Item"});
  EXPECT_EQ(f.sink.bag.total_count(), 0);
  ASSERT_TRUE(f.graph.AddVertexLabel(v, "Hot").ok());
  EXPECT_EQ(f.sink.bag.total_count(), 1);
  ASSERT_TRUE(f.graph.RemoveVertexLabel(v, "Hot").ok());
  EXPECT_EQ(f.sink.bag.total_count(), 0);
  // Unrelated label changes emit nothing.
  int before = f.sink.entries_seen;
  ASSERT_TRUE(f.graph.AddVertexLabel(v, "Other").ok());
  EXPECT_EQ(f.sink.entries_seen, before);
}

TEST(VertexInputNodeTest, PropertyExtractMaintained) {
  VertexFixture f({"A"}, {PropExtract("v", "x")});
  VertexId v = f.graph.AddVertex({"A"}, {{"x", Value::Int(1)}});
  Tuple with_1({Value::Vertex(v), Value::Int(1)});
  EXPECT_EQ(f.sink.bag.Count(with_1), 1);

  ASSERT_TRUE(f.graph.SetVertexProperty(v, "x", Value::Int(2)).ok());
  EXPECT_EQ(f.sink.bag.Count(with_1), 0);
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(v), Value::Int(2)})), 1);

  // Erasing the property yields a null column, not a retraction.
  ASSERT_TRUE(f.graph.SetVertexProperty(v, "x", Value::Null()).ok());
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(v), Value::Null()})), 1);
}

TEST(VertexInputNodeTest, IrrelevantPropertyChangesFiltered) {
  VertexFixture f({"A"}, {PropExtract("v", "x")});
  VertexId v = f.graph.AddVertex({"A"}, {{"x", Value::Int(1)}});
  int before = f.sink.entries_seen;
  ASSERT_TRUE(f.graph.SetVertexProperty(v, "unrelated", Value::Int(9)).ok());
  EXPECT_EQ(f.sink.entries_seen, before);  // Minimal schema in action.
}

TEST(VertexInputNodeTest, InitialStateEmitted) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"}, {{"x", Value::Int(7)}});
  graph.AddVertex({"B"});

  Schema schema({{"v", Attribute::Kind::kVertex},
                 {"#v.x", Attribute::Kind::kValue}});
  VertexInputNode node(schema, &graph, {"A"}, {PropExtract("v", "x")});
  SinkNode sink;
  node.AddOutput(&sink, 0);
  node.EmitInitialFromGraph();
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Vertex(a), Value::Int(7)})), 1);
  EXPECT_EQ(sink.bag.total_count(), 1);
}

TEST(VertexInputNodeTest, LabelsExtractRefreshes) {
  PropertyExtract labels_extract{PropertyExtract::What::kLabels, "v", "",
                                 "#labels(v)"};
  VertexFixture f({"A"}, {labels_extract});
  VertexId v = f.graph.AddVertex({"A"});
  ASSERT_TRUE(f.graph.AddVertexLabel(v, "Z").ok());
  Tuple expected({Value::Vertex(v),
                  Value::List({Value::String("A"), Value::String("Z")})});
  EXPECT_EQ(f.sink.bag.Count(expected), 1);
  EXPECT_EQ(f.sink.bag.total_count(), 1);
}

// ---- EdgeInputNode ---------------------------------------------------------

struct EdgeFixture {
  EdgeFixture(std::vector<std::string> types, bool undirected,
              std::vector<PropertyExtract> extracts) {
    Schema schema({{"s", Attribute::Kind::kVertex},
                   {"e", Attribute::Kind::kEdge},
                   {"t", Attribute::Kind::kVertex}});
    for (const PropertyExtract& x : extracts) {
      schema.Add({x.column_name, Attribute::Kind::kValue});
    }
    node = std::make_unique<EdgeInputNode>(schema, &graph, std::move(types),
                                           undirected, "s", "e", "t",
                                           std::move(extracts));
    node->AddOutput(&sink, 0);
    adapter = std::make_unique<Adapter>(node.get());
    graph.AddListener(adapter.get());
  }

  PropertyGraph graph;
  SinkNode sink;
  std::unique_ptr<EdgeInputNode> node;
  std::unique_ptr<Adapter> adapter;
};

TEST(EdgeInputNodeTest, TypeFiltering) {
  EdgeFixture f({"X", "Y"}, false, {});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  (void)f.graph.AddEdge(a, b, "X").value();
  (void)f.graph.AddEdge(a, b, "Y").value();
  (void)f.graph.AddEdge(a, b, "Z").value();
  EXPECT_EQ(f.sink.bag.total_count(), 2);
}

TEST(EdgeInputNodeTest, UndirectedEmitsBothOrientations) {
  EdgeFixture f({"T"}, /*undirected=*/true, {});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  EdgeId e = f.graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(a), Value::Edge(e),
                                    Value::Vertex(b)})),
            1);
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(b), Value::Edge(e),
                                    Value::Vertex(a)})),
            1);
  ASSERT_TRUE(f.graph.RemoveEdge(e).ok());
  EXPECT_EQ(f.sink.bag.total_count(), 0);
}

TEST(EdgeInputNodeTest, UndirectedSelfLoopEmitsOnce) {
  EdgeFixture f({"T"}, /*undirected=*/true, {});
  VertexId a = f.graph.AddVertex({});
  (void)f.graph.AddEdge(a, a, "T").value();
  EXPECT_EQ(f.sink.bag.total_count(), 1);
}

TEST(EdgeInputNodeTest, EdgePropertyExtractMaintained) {
  EdgeFixture f({"T"}, false, {PropExtract("e", "w")});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  EdgeId e = f.graph.AddEdge(a, b, "T", {{"w", Value::Int(1)}}).value();
  ASSERT_TRUE(f.graph.SetEdgeProperty(e, "w", Value::Int(5)).ok());
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(a), Value::Edge(e),
                                    Value::Vertex(b), Value::Int(5)})),
            1);
  EXPECT_EQ(f.sink.bag.total_count(), 1);
}

TEST(EdgeInputNodeTest, EndpointPropertyExtractRefreshesIncidentEdges) {
  EdgeFixture f({"T"}, false, {PropExtract("t", "score")});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({}, {{"score", Value::Int(1)}});
  EdgeId e1 = f.graph.AddEdge(a, b, "T").value();
  EdgeId e2 = f.graph.AddEdge(a, b, "T").value();

  ASSERT_TRUE(f.graph.SetVertexProperty(b, "score", Value::Int(2)).ok());
  // Both incident edges refreshed to the new score.
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(a), Value::Edge(e1),
                                    Value::Vertex(b), Value::Int(2)})),
            1);
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(a), Value::Edge(e2),
                                    Value::Vertex(b), Value::Int(2)})),
            1);
  EXPECT_EQ(f.sink.bag.total_count(), 2);
}

TEST(EdgeInputNodeTest, SourcePropertyChangeDoesNotTouchTargetExtract) {
  EdgeFixture f({"T"}, false, {PropExtract("t", "score")});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({}, {{"score", Value::Int(1)}});
  (void)f.graph.AddEdge(a, b, "T").value();
  int before = f.sink.entries_seen;
  ASSERT_TRUE(f.graph.SetVertexProperty(a, "score", Value::Int(9)).ok());
  EXPECT_EQ(f.sink.entries_seen, before);  // `a` is the source, not target.
}

TEST(EdgeInputNodeTest, TypeExtract) {
  PropertyExtract type_extract{PropertyExtract::What::kType, "e", "",
                               "#type(e)"};
  EdgeFixture f({}, false, {type_extract});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  EdgeId e = f.graph.AddEdge(a, b, "KNOWS").value();
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(a), Value::Edge(e),
                                    Value::Vertex(b),
                                    Value::String("KNOWS")})),
            1);
}

// ---- Batch consistency across input nodes ----------------------------------

TEST(InputNodeBatchTest, InterleavedBatchYieldsConsistentNetState) {
  VertexFixture f({"A"}, {PropExtract("v", "x"), PropExtract("v", "y")});
  f.graph.BeginBatch();
  VertexId v = f.graph.AddVertex({"A"});
  ASSERT_TRUE(f.graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  ASSERT_TRUE(f.graph.SetVertexProperty(v, "y", Value::Int(2)).ok());
  ASSERT_TRUE(f.graph.SetVertexProperty(v, "x", Value::Int(3)).ok());
  f.graph.CommitBatch();
  EXPECT_EQ(f.sink.bag.total_count(), 1);
  EXPECT_EQ(f.sink.bag.Count(Tuple({Value::Vertex(v), Value::Int(3),
                                    Value::Int(2)})),
            1);
}

}  // namespace
}  // namespace pgivm
