#include "rete/join_node.h"

#include "support/string_util.h"

namespace pgivm {

JoinLayout JoinLayout::Make(const Schema& left, const Schema& right) {
  JoinLayout layout;
  for (size_t i = 0; i < left.size(); ++i) {
    int r = right.IndexOf(left.at(i).name);
    if (r >= 0) {
      layout.left_key.push_back(static_cast<int>(i));
      layout.right_key.push_back(r);
    }
  }
  for (size_t i = 0; i < right.size(); ++i) {
    if (!left.Contains(right.at(i).name)) {
      layout.right_rest.push_back(static_cast<int>(i));
    }
  }
  return layout;
}

JoinNode::JoinNode(Schema schema, const Schema& left, const Schema& right)
    : ReteNode(std::move(schema)), layout_(JoinLayout::Make(left, right)) {}

void JoinNode::Apply(Memory& memory, const Tuple& key, const Tuple& tuple,
                     int64_t multiplicity) {
  Bag& bag = memory[key];
  bag.Apply(tuple, multiplicity);
  if (bag.total_count() == 0) memory.erase(key);
}

Tuple JoinNode::Combine(const Tuple& left, const Tuple& right) const {
  return left.ConcatProjected(right, layout_.right_rest);
}

void JoinNode::OnDelta(int port, const Delta& delta) {
  Delta out;
  for (const DeltaEntry& entry : delta) {
    if (port == 0) {
      Tuple key = entry.tuple.Project(layout_.left_key);
      Apply(left_memory_, key, entry.tuple, entry.multiplicity);
      auto it = right_memory_.find(key);
      if (it == right_memory_.end()) continue;
      for (const auto& [right_tuple, right_count] : it->second.counts()) {
        out.push_back({Combine(entry.tuple, right_tuple),
                       entry.multiplicity * right_count});
      }
    } else {
      Tuple key = entry.tuple.Project(layout_.right_key);
      Apply(right_memory_, key, entry.tuple, entry.multiplicity);
      auto it = left_memory_.find(key);
      if (it == left_memory_.end()) continue;
      for (const auto& [left_tuple, left_count] : it->second.counts()) {
        out.push_back({Combine(left_tuple, entry.tuple),
                       entry.multiplicity * left_count});
      }
    }
  }
  Emit(std::move(out));
}

bool JoinNode::ReplayOutput(Delta& out) const {
  for (const auto& [key, left_bag] : left_memory_) {
    auto it = right_memory_.find(key);
    if (it == right_memory_.end()) continue;
    for (const auto& [left_tuple, left_count] : left_bag.counts()) {
      for (const auto& [right_tuple, right_count] : it->second.counts()) {
        out.push_back({Combine(left_tuple, right_tuple),
                       left_count * right_count});
      }
    }
  }
  return true;
}

size_t JoinNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, bag] : left_memory_) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  }
  for (const auto& [key, bag] : right_memory_) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  }
  return bytes;
}

std::string JoinNode::DebugString() const {
  return StrCat("Join[", layout_.left_key.size(), " keys]");
}

}  // namespace pgivm
