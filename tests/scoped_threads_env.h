#ifndef PGIVM_TESTS_SCOPED_THREADS_ENV_H_
#define PGIVM_TESTS_SCOPED_THREADS_ENV_H_

#include <cstdlib>
#include <string>

namespace pgivm {

/// Scoped PGIVM_THREADS manipulation. The env override wins over
/// programmatic executor configuration for every engine-created network,
/// and the TSAN CI job exports PGIVM_THREADS=8 for whole test binaries —
/// so any test that *relies* on a specific executor (serial reference
/// engines for bit-identity checks, option-threading asserts) must pin the
/// variable for the engine constructions it cares about. The override is
/// read at engine/catalog construction time, so guarding the constructor
/// call is sufficient.
class ScopedThreadsEnv {
 public:
  /// nullptr unsets the variable (programmatic options apply untouched);
  /// any other value is exported verbatim.
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = getenv("PGIVM_THREADS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value == nullptr) {
      unsetenv("PGIVM_THREADS");
    } else {
      setenv("PGIVM_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_) {
      setenv("PGIVM_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("PGIVM_THREADS");
    }
  }

  ScopedThreadsEnv(const ScopedThreadsEnv&) = delete;
  ScopedThreadsEnv& operator=(const ScopedThreadsEnv&) = delete;

 private:
  std::string saved_;
  bool had_ = false;
};

/// Same save/override/restore dance for any PGIVM_* variable — morsel
/// tests pin PGIVM_MORSEL (the TSAN CI job exports PGIVM_MORSEL=0 to force
/// partitioned delivery) exactly like executor tests pin PGIVM_THREADS.
class ScopedEnvVar {
 public:
  /// nullptr unsets the variable; any other value is exported verbatim.
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, 1);
    }
  }
  ~ScopedEnvVar() {
    if (had_) {
      setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

  ScopedEnvVar(const ScopedEnvVar&) = delete;
  ScopedEnvVar& operator=(const ScopedEnvVar&) = delete;

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

}  // namespace pgivm

#endif  // PGIVM_TESTS_SCOPED_THREADS_ENV_H_
