#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "workload/railway.h"
#include "workload/random_graph.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

TEST(SocialNetworkTest, PopulateBuildsExpectedShape) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  config.posts_per_person = 2;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EXPECT_EQ(generator.persons().size(), 20u);
  EXPECT_EQ(generator.posts().size(), 40u);
  EXPECT_GT(generator.comments().size(), 0u);
  EXPECT_EQ(graph.VerticesWithLabel("Person").size(), 20u);
  EXPECT_EQ(graph.VerticesWithLabel("Post").size(), 40u);
  EXPECT_GT(graph.EdgesWithType("REPLY").size(), 0u);
  EXPECT_GT(graph.EdgesWithType("KNOWS").size(), 0u);

  // Every person speaks at least one language (collection property).
  for (VertexId person : generator.persons()) {
    Value speaks = graph.GetVertexProperty(person, "speaks");
    ASSERT_TRUE(speaks.is_list());
    EXPECT_GE(speaks.AsList().size(), 1u);
  }
}

TEST(SocialNetworkTest, DeterministicForSameSeed) {
  SocialNetworkConfig config;
  config.persons = 10;
  PropertyGraph g1, g2;
  SocialNetworkGenerator(config).Populate(&g1);
  SocialNetworkGenerator(config).Populate(&g2);
  EXPECT_EQ(g1.vertex_count(), g2.vertex_count());
  EXPECT_EQ(g1.edge_count(), g2.edge_count());
}

TEST(SocialNetworkTest, UpdateStreamKeepsViewsConsistent) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 15;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (p:Post)-[:REPLY*]->(c:Comm) "
                            "WHERE p.lang = c.lang RETURN p, c")
                  .value();
  for (int i = 0; i < 60; ++i) generator.ApplyRandomUpdate(&graph);

  // Spot-check against one-shot evaluation.
  auto once = engine.EvaluateOnce(
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c");
  ASSERT_TRUE(once.ok()) << once.status();
  EXPECT_EQ(view->Snapshot(), once.value());
}

TEST(RailwayTest, PopulateInjectsFaults) {
  PropertyGraph graph;
  RailwayConfig config;
  config.routes = 10;
  config.fault_rate = 0.3;
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto pos_length =
      engine.Register(RailwayGenerator::PosLengthQuery()).value();
  auto switch_monitored =
      engine.Register(RailwayGenerator::SwitchMonitoredQuery()).value();
  auto route_sensor =
      engine.Register(RailwayGenerator::RouteSensorQuery()).value();
  auto switch_set =
      engine.Register(RailwayGenerator::SwitchSetQuery()).value();

  // With a 30% fault rate, each constraint should have violations.
  EXPECT_GT(pos_length->size(), 0);
  EXPECT_GT(switch_monitored->size(), 0);
  EXPECT_GT(route_sensor->size(), 0);
  EXPECT_GT(switch_set->size(), 0);
}

TEST(RailwayTest, ConstraintsMatchBaselineUnderUpdates) {
  PropertyGraph graph;
  RailwayConfig config;
  config.routes = 6;
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::string> queries = {
      RailwayGenerator::PosLengthQuery(),
      RailwayGenerator::SwitchMonitoredQuery(),
      RailwayGenerator::RouteSensorQuery(),
      RailwayGenerator::SwitchSetQuery(),
  };
  std::vector<std::shared_ptr<View>> views;
  for (const std::string& query : queries) {
    views.push_back(engine.Register(query).value());
  }
  for (int i = 0; i < 40; ++i) {
    generator.ApplyRandomUpdate(&graph);
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    auto expected = engine.EvaluateOnce(queries[q]);
    ASSERT_TRUE(expected.ok()) << expected.status();
    EXPECT_EQ(views[q]->Snapshot(), expected.value()) << queries[q];
  }
}

TEST(RandomGraphTest, PopulateAndUpdateKeepGraphValid) {
  PropertyGraph graph;
  RandomGraphConfig config;
  config.initial_vertices = 25;
  config.initial_edges = 40;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);
  EXPECT_EQ(graph.vertex_count(), 25u);

  for (int i = 0; i < 200; ++i) generator.ApplyRandomUpdate(&graph);
  // Graph invariants hold: every live edge has live endpoints.
  graph.ForEachEdge([&](EdgeId e) {
    EXPECT_TRUE(graph.HasVertex(graph.EdgeSource(e)));
    EXPECT_TRUE(graph.HasVertex(graph.EdgeTarget(e)));
  });
}

}  // namespace
}  // namespace pgivm
