// E6 — ablation of the paper's minimal schema inference (step 3).
//
// With pushdown, ◯/⇑ leaves extract exactly the properties the query
// needs; without it (naive mode) they materialize whole property maps and
// every access becomes a map lookup. We measure per-update latency and
// network memory on a property-heavy workload where vertices carry many
// irrelevant properties.
// Expected shape: minimal-schema plans are faster and far smaller, with
// the gap growing in the number of irrelevant properties.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "engine/query_engine.h"
#include "support/rng.h"

namespace pgivm {
namespace {

constexpr char kQuery[] =
    "MATCH (a:Item)-[:REL]->(b:Item) WHERE a.x = b.x RETURN a, b";

void RunAblation(benchmark::State& state, bool minimal_schema) {
  EngineOptions options;
  options.plan.naive_property_maps = !minimal_schema;

  int64_t extra_properties = state.range(0);
  PropertyGraph graph;
  Rng rng(5);
  std::vector<VertexId> items;
  graph.BeginBatch();
  for (int i = 0; i < 300; ++i) {
    ValueMap props;
    props["x"] = Value::Int(static_cast<int64_t>(rng.NextBelow(10)));
    for (int64_t p = 0; p < extra_properties; ++p) {
      props["pad" + std::to_string(p)] =
          Value::String("irrelevant payload " + std::to_string(p));
    }
    items.push_back(graph.AddVertex({"Item"}, std::move(props)));
  }
  for (int i = 0; i < 600; ++i) {
    (void)graph.AddEdge(items[rng.NextBelow(items.size())],
                        items[rng.NextBelow(items.size())], "REL");
  }
  graph.CommitBatch();

  QueryEngine engine(&graph, options);
  auto view = engine.Register(kQuery).value();

  for (auto _ : state) {
    VertexId v = items[rng.NextBelow(items.size())];
    (void)graph.SetVertexProperty(
        v, "x", Value::Int(static_cast<int64_t>(rng.NextBelow(10))));
  }
  state.counters["extra_props"] = static_cast<double>(extra_properties);
  state.counters["net_mem_kb"] =
      static_cast<double>(view->ApproxMemoryBytes()) / 1024.0;
}

void BM_E6_MinimalSchema(benchmark::State& state) {
  RunAblation(state, /*minimal_schema=*/true);
}
BENCHMARK(BM_E6_MinimalSchema)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(400);

void BM_E6_NaiveFullMaps(benchmark::State& state) {
  RunAblation(state, /*minimal_schema=*/false);
}
BENCHMARK(BM_E6_NaiveFullMaps)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(400);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
