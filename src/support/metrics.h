#ifndef PGIVM_SUPPORT_METRICS_H_
#define PGIVM_SUPPORT_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/status.h"

namespace pgivm {

/// Nanoseconds since a process-wide steady-clock origin (captured on first
/// use). Monotonic, comparable across threads, never affected by wall-clock
/// adjustments — the timebase of every histogram sample and trace event.
int64_t MonotonicNowNs();

/// Lock-free monotonically increasing counter. Add() is a relaxed atomic
/// fetch-add, safe from any number of threads; value() is a relaxed load,
/// safe concurrently with writers (readers may observe a slightly stale
/// total mid-update, never a torn one).
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Bucket count of every LatencyHistogram: 64 power-of-two buckets cover
/// the full non-negative int64 range (bucket 0 holds <= 0, bucket i holds
/// [2^(i-1), 2^i - 1]), so a nanosecond-resolution histogram spans from
/// single nanoseconds to ~292 years with ~2x relative error — fixed-size,
/// allocation-free, no configuration needed.
inline constexpr size_t kHistogramBuckets = 64;

/// A point-in-time copy of a LatencyHistogram, safe to keep and query after
/// the histogram keeps moving. Percentile() is exact with respect to the
/// bucket layout: it returns the upper bound of the bucket containing the
/// requested rank (clamped to the observed maximum), so tests can compute
/// the expected value from first principles.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// Inclusive upper bound of bucket `index`: 0, 1, 3, 7, ... 2^i - 1.
  static int64_t BucketUpperBound(size_t index);

  /// Value at or below which a fraction `p` (in (0, 1]) of recorded samples
  /// fall: the upper bound of the bucket holding rank ceil(p * count),
  /// clamped to max. Returns 0 for an empty histogram.
  int64_t Percentile(double p) const;

  int64_t P50() const { return Percentile(0.50); }
  int64_t P95() const { return Percentile(0.95); }
  int64_t P99() const { return Percentile(0.99); }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log2-scale latency histogram. Record() touches four relaxed
/// atomics (bucket, count, sum, max) — lock-free, wait-free except for the
/// max CAS loop, safe from any number of threads. Snapshot() is a relaxed
/// read of every cell: concurrent with writers the copy may be mid-update
/// by a few samples (count/sum/buckets can disagree transiently by the
/// in-flight recordings), which is the usual monitoring contract; quiescent
/// reads are exact.
class LatencyHistogram {
 public:
  /// Records one sample (negative values clamp to bucket 0).
  void Record(int64_t value);

  HistogramSnapshot Snapshot() const;

  /// Bucket a value lands in: 0 for <= 0, else 1 + floor(log2(value)),
  /// capped at kHistogramBuckets - 1. Exposed for the bucket-math tests.
  static size_t BucketIndex(int64_t value);

 private:
  std::array<std::atomic<int64_t>, kHistogramBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Named counters and histograms with stable addresses. Creation
/// (GetCounter/GetHistogram) takes a mutex and returns a reference that
/// stays valid for the registry's lifetime, so hot paths resolve their
/// instruments once at setup and then record lock-free. The snapshot
/// accessors copy name -> value pairs in name order (deterministic output).
///
/// Thread-safety: Get* and the snapshot accessors may be called from any
/// thread; recording through previously resolved references is lock-free.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  LatencyHistogram& GetHistogram(const std::string& name);

  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// One completed span for the Chrome/Perfetto trace export ("X" phase
/// events). `args` is a preformatted JSON object body without the braces
/// (e.g. `"entries":12,"level":3`) — kept as a string so recording does not
/// depend on any JSON machinery.
struct TraceEvent {
  std::string name;
  const char* category = "pgivm";
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int tid = 1;
  std::string args;
};

/// Capacity-bounded in-memory trace sink. Append() is single-writer (the
/// network's draining thread, or the ingest thread for the engine's ingest
/// buffer) and drops events beyond capacity, counting the drops — a long
/// profiling session degrades to a truncated trace, never to unbounded
/// memory. Reading (events()/dropped()) is writer-thread-only too; the
/// engine's DumpTrace documents when that is.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns false (and counts a drop) once the buffer is full.
  bool Append(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  int64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  int64_t dropped_ = 0;
};

/// Writes the merged events of `buffers` (nulls skipped) as a Chrome
/// tracing / Perfetto-compatible JSON object ({"traceEvents": [...]}) to
/// `path`. Timestamps are emitted in microseconds with nanosecond
/// fractions, as chrome://tracing expects. Fails with an IO error if the
/// file cannot be written.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<const TraceBuffer*>& buffers);

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_METRICS_H_
