#ifndef PGIVM_GRAPH_PROPERTY_COLUMNS_H_
#define PGIVM_GRAPH_PROPERTY_COLUMNS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/symbol_table.h"
#include "value/value.h"

namespace pgivm {

/// One property key's values across all elements of one kind (vertices or
/// edges), stored columnar: a packed typed lane (Int64, Double, or packed
/// Bool) indexed by element id with a presence bitmap, plus a sparse
/// `Value` overflow map for values the lane cannot hold.
///
/// Lane typing is adaptive: the column is untyped until the first scalar
/// Int/Double/Bool arrives, then the lane adopts that type for good.
/// Values of any other type (a Double landing in an Int lane, strings,
/// lists, maps) go to the overflow map — so storage never coerces: a value
/// reads back as the exact Value that was written, which the bit-identity
/// harness requires (Value::Compare treats Int(1) == Double(1.0), so a
/// lossy int↔double conversion would be invisible to comparisons but
/// change downstream arithmetic).
///
/// Element ids index the lane directly (ids are dense and never reused);
/// deletions clear the presence bit and leave the slot garbage.
class PropertyColumn {
 public:
  /// The stored value for `id`, or null if absent.
  Value Get(int64_t id) const;

  bool Has(int64_t id) const {
    return PresentTyped(id) || (!overflow_.empty() && overflow_.count(id));
  }

  /// Stores a non-null value, routing to the typed lane when it fits and
  /// the overflow map otherwise.
  void Set(int64_t id, const Value& value);

  /// Removes `id`'s value (no-op if absent).
  void Erase(int64_t id);

  bool empty() const { return typed_count_ == 0 && overflow_.empty(); }

  size_t ApproxMemoryBytes() const;

 private:
  enum class Tag : uint8_t { kUnset, kInt64, kDouble, kBool };

  bool PresentTyped(int64_t id) const {
    size_t word = static_cast<size_t>(id) >> 6;
    return word < present_.size() &&
           (present_[word] >> (static_cast<size_t>(id) & 63)) & 1u;
  }
  void SetPresent(int64_t id);
  void ClearPresent(int64_t id);
  /// Whether `value` can live in the typed lane, adopting a tag for the
  /// first scalar if the column is still untyped.
  bool FitsLane(const Value& value);

  Tag tag_ = Tag::kUnset;
  std::vector<uint64_t> present_;  // bit i set: lane holds id i's value
  std::vector<int64_t> ints_;      // lane when tag_ == kInt64
  std::vector<double> doubles_;    // lane when tag_ == kDouble
  std::vector<uint64_t> bools_;    // packed lane when tag_ == kBool
  std::unordered_map<int64_t, Value> overflow_;
  size_t typed_count_ = 0;
};

/// All properties of one element kind, behind a storage-mode switch:
///
///  * typed mode (StorageOptions::typed_columns, the default): one
///    PropertyColumn per key symbol — reads are O(1) array probes and
///    scans touch contiguous lanes;
///  * row mode (the legacy layout, kept for ablation and differential
///    testing): one string-keyed ValueMap per element, exactly the seed's
///    per-element representation.
///
/// Both modes implement identical observable semantics — Get returns the
/// exact Value last Set, Collect materializes the same name-sorted
/// ValueMap — so the engine is bit-identical across modes; the harnesses
/// lock this in.
class PropertyStore {
 public:
  PropertyStore(const SymbolTable* symbols, bool typed)
      : symbols_(symbols), typed_(typed) {}

  PropertyStore(const PropertyStore&) = delete;
  PropertyStore& operator=(const PropertyStore&) = delete;

  bool typed() const { return typed_; }

  /// The stored value, or null if absent.
  Value Get(int64_t id, SymbolId key) const;

  bool Has(int64_t id, SymbolId key) const;

  /// Sets `key` for element `id`; a null value erases.
  void Set(int64_t id, SymbolId key, const Value& value);

  /// Drops every property of `id` (element removal).
  void ClearElement(int64_t id);

  /// Materializes `id`'s properties as a name-sorted ValueMap — identical
  /// across storage modes.
  ValueMap Collect(int64_t id) const;

  size_t ApproxMemoryBytes() const;

 private:
  const SymbolTable* symbols_;
  bool typed_;
  std::vector<PropertyColumn> columns_;  // typed mode, indexed by SymbolId
  std::vector<ValueMap> rows_;           // row mode, indexed by element id
};

}  // namespace pgivm

#endif  // PGIVM_GRAPH_PROPERTY_COLUMNS_H_
