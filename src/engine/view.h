#ifndef PGIVM_ENGINE_VIEW_H_
#define PGIVM_ENGINE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "rete/network.h"

namespace pgivm {

/// A live, incrementally maintained query result.
///
/// Obtained from QueryEngine::Register. The view stays consistent with its
/// graph after every committed change; reading it never triggers
/// re-evaluation. Destroying the view detaches it from the graph.
///
/// Ordering note (the paper's ORD restriction): the maintained result is a
/// bag — no order is maintained. Snapshot() sorts rows only for
/// presentation/determinism and applies the query's SKIP/LIMIT at that
/// moment.
class View {
 public:
  ~View();

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  /// Output column names, in RETURN order.
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Current rows, multiplicities expanded, sorted, SKIP/LIMIT applied.
  std::vector<Tuple> Snapshot() const;

  /// The maintained bag itself (tuple -> multiplicity), unsorted.
  const Bag& results() const { return network_->production()->results(); }

  /// Total number of result rows (with duplicates).
  int64_t size() const { return results().total_count(); }

  /// Change notifications; listeners receive normalized deltas.
  void AddListener(ViewChangeListener* listener) {
    network_->production()->AddListener(listener);
  }
  void RemoveListener(ViewChangeListener* listener) {
    network_->production()->RemoveListener(listener);
  }

  const std::string& query() const { return query_; }

  /// Compiled plans, for inspection/tests: the GRA tree (paper step 1) and
  /// the lowered FRA plan (steps 2–3) the network implements.
  const OpPtr& gra_plan() const { return gra_; }
  const OpPtr& fra_plan() const { return fra_; }

  /// Runtime propagation strategy of the underlying network (from
  /// EngineOptions::network at registration time).
  PropagationStrategy propagation() const { return network_->propagation(); }

  /// Memory held by the Rete node memories of this view.
  size_t ApproxMemoryBytes() const { return network_->ApproxMemoryBytes(); }

  /// Per-node diagnostics of the underlying network.
  std::string NetworkDebugString() const { return network_->DebugString(); }

  const ReteNetwork& network() const { return *network_; }

 private:
  friend class QueryEngine;
  View() = default;

  std::string query_;
  OpPtr gra_;
  OpPtr fra_;
  std::unique_ptr<ReteNetwork> network_;
  std::vector<std::string> columns_;
  int64_t skip_ = 0;
  int64_t limit_ = -1;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_VIEW_H_
