// Semantics-focused maintenance scenarios: each test drives a specific
// corner of delta propagation (batches, property churn inside batches,
// detach-delete cascades, ablation modes) and checks the view stays exact.

#include <gtest/gtest.h>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

TEST(IncrementalSemanticsTest, MultiWriteBatchIsConsistent) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) WHERE n.x = 1 AND n.y = 2 RETURN n")
          .value();

  // Both properties written in ONE batch; the view must not lose or
  // double-count the row despite intermediate states.
  VertexId v = graph.AddVertex({"A"});
  graph.BeginBatch();
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(v, "y", Value::Int(2)).ok());
  graph.CommitBatch();
  EXPECT_EQ(view->size(), 1);

  graph.BeginBatch();
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(0)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(v, "y", Value::Int(0)).ok());
  graph.CommitBatch();
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, AddVertexAndPropertiesInOneBatch) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) WHERE n.x = 1 RETURN n").value();

  graph.BeginBatch();
  VertexId v = graph.AddVertex({"A"});
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  graph.CommitBatch();
  EXPECT_EQ(view->size(), 1);
}

TEST(IncrementalSemanticsTest, DetachDeleteCascadesThroughJoins) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (a:A)-[:T]->(b:B)-[:T]->(c:C) "
                            "RETURN a, b, c")
                  .value();
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  VertexId c = graph.AddVertex({"C"});
  (void)graph.AddEdge(a, b, "T").value();
  (void)graph.AddEdge(b, c, "T").value();
  EXPECT_EQ(view->size(), 1);

  ASSERT_TRUE(graph.DetachRemoveVertex(b).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, EdgeAddedAndEndpointDetachedInOneBatch) {
  // The delta carries kAddEdge for an edge whose endpoint is dead in the
  // post-batch graph (added, replied-to, then detach-removed before the
  // commit). The edge leaf extracts endpoint properties from the live
  // graph, so the add must be skipped, not dereferenced.
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (p:Post)-[:REPLY]->(c:Comm) "
                            "WHERE p.lang = c.lang RETURN p, c")
                  .value();
  VertexId post = graph.AddVertex({"Post"}, {{"lang", Value::String("en")}});

  graph.BeginBatch();
  VertexId gone = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)graph.AddEdge(post, gone, "REPLY").value();
  VertexId kept = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)graph.AddEdge(post, kept, "REPLY").value();
  ASSERT_TRUE(graph.DetachRemoveVertex(gone).ok());
  graph.CommitBatch();

  // Only the surviving reply matches; the transient one left no residue.
  EXPECT_EQ(view->size(), 1);
}

TEST(IncrementalSemanticsTest, PathEdgeAddedAndEndpointDetachedInOneBatch) {
  // Same batch shape against the transitive path node: its kAddEdge
  // handling DFS-walks the post-batch graph from the new edge's endpoints,
  // which must not touch a vertex the batch later detach-removed.
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (p:Post)-[:REPLY*]->(c:Comm) "
                            "RETURN p, c")
                  .value();
  VertexId post = graph.AddVertex({"Post"});
  VertexId c1 = graph.AddVertex({"Comm"});
  (void)graph.AddEdge(post, c1, "REPLY").value();
  EXPECT_EQ(view->size(), 1);

  graph.BeginBatch();
  VertexId gone = graph.AddVertex({"Comm"});
  (void)graph.AddEdge(c1, gone, "REPLY").value();
  VertexId c2 = graph.AddVertex({"Comm"});
  (void)graph.AddEdge(c1, c2, "REPLY").value();
  ASSERT_TRUE(graph.DetachRemoveVertex(gone).ok());
  graph.CommitBatch();

  // Surviving trails: post->c1, post->c1->c2, c1->c2... restricted to
  // (Post, Comm) endpoints: post->c1 and post->*->c2.
  EXPECT_EQ(view->size(), 2);
}

TEST(IncrementalSemanticsTest, EndpointPropertyUpdateRefreshesEdgeLeaf) {
  // `b.w` is extracted at the GetEdges leaf (b has no GetVertices leaf of
  // its own when unlabelled); updating b.w must refresh edge tuples.
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (a:A)-[:T]->(b) WHERE b.w = 1 RETURN b")
                  .value();
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({}, {{"w", Value::Int(0)}});
  (void)graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.SetVertexProperty(b, "w", Value::Int(1)).ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.SetVertexProperty(b, "w", Value::Int(2)).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, LabelsFunctionTracksLabelChanges) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) RETURN n, size(labels(n)) AS l").value();
  VertexId v = graph.AddVertex({"A"});
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(1));
  ASSERT_TRUE(graph.AddVertexLabel(v, "B").ok());
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(2));
  ASSERT_TRUE(graph.RemoveVertexLabel(v, "B").ok());
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(1));
}

TEST(IncrementalSemanticsTest, NaivePropertyMapModeBehavesIdentically) {
  EngineOptions naive;
  naive.plan.naive_property_maps = true;

  PropertyGraph graph;
  QueryEngine engine(&graph, naive);
  auto view =
      engine.Register("MATCH (n:A) WHERE n.x > 0 RETURN n, n.x AS x")
          .value();
  VertexId v = graph.AddVertex({"A"}, {{"x", Value::Int(5)}});
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(5));
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(-1)).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, CoarseUnnestModeBehavesIdentically) {
  EngineOptions coarse;
  coarse.network.fine_grained_unnest = false;
  coarse.plan.narrow_unnest_outputs = false;

  PropertyGraph graph;
  QueryEngine engine(&graph, coarse);
  auto view =
      engine.Register("MATCH (n:A) UNWIND n.tags AS t RETURN t").value();
  VertexId v = graph.AddVertex(
      {"A"}, {{"tags", Value::List({Value::Int(1), Value::Int(2)})}});
  EXPECT_EQ(view->size(), 2);
  ASSERT_TRUE(graph.ListAppend(v, "tags", Value::Int(3)).ok());
  EXPECT_EQ(view->size(), 3);
}

TEST(IncrementalSemanticsTest, MapPropertyFineGrainedUpdates) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (n:Cfg) WHERE n.opts['mode'] = 'fast' "
                            "RETURN n")
                  .value();
  VertexId v = graph.AddVertex({"Cfg"});
  ASSERT_TRUE(graph.MapPut(v, "opts", "mode", Value::String("slow")).ok());
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.MapPut(v, "opts", "mode", Value::String("fast")).ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.MapErase(v, "opts", "mode").ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, PropertyErasureRetractsRows) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) WHERE n.x IS NOT NULL RETURN n").value();
  VertexId v = graph.AddVertex({"A"}, {{"x", Value::Int(1)}});
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Null()).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, IsNullSeesAbsentProperties) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) WHERE n.x IS NULL RETURN n").value();
  VertexId v = graph.AddVertex({"A"});
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(IncrementalSemanticsTest, ZeroLengthVariablePattern) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (a:A)-[:T*0..1]->(b) RETURN a, b").value();
  VertexId a = graph.AddVertex({"A"});
  EXPECT_EQ(view->size(), 1);  // Zero-length: (a, a).
  VertexId b = graph.AddVertex({});
  (void)graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(view->size(), 2);
}

TEST(IncrementalSemanticsTest, IncomingVariableLength) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (c:Comm)<-[:REPLY*]-(p:Post) "
                            "RETURN c, p")
                  .value();
  VertexId p = graph.AddVertex({"Post"});
  VertexId c1 = graph.AddVertex({"Comm"});
  VertexId c2 = graph.AddVertex({"Comm"});
  (void)graph.AddEdge(p, c1, "REPLY").value();
  (void)graph.AddEdge(c1, c2, "REPLY").value();
  // c1 <- p and c2 <-* p (via c1). c2 <- c1 has wrong source label.
  EXPECT_EQ(view->size(), 2);
}

TEST(IncrementalSemanticsTest, CollectAggregateMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      engine.Register("MATCH (n:A) RETURN collect(n.x) AS xs").value();
  VertexId v1 = graph.AddVertex({"A"}, {{"x", Value::Int(2)}});
  graph.AddVertex({"A"}, {{"x", Value::Int(1)}});
  EXPECT_EQ(view->Snapshot()[0].at(0),
            Value::List({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(graph.RemoveVertex(v1).ok());
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::List({Value::Int(1)}));
}

TEST(IncrementalSemanticsTest, LongChainPropagation) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (a:A)-[:T]->(b)-[:T]->(c)-[:T]->(d:D) "
                            "RETURN a, d")
                  .value();
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({});
  VertexId c = graph.AddVertex({});
  VertexId d = graph.AddVertex({"D"});
  (void)graph.AddEdge(a, b, "T").value();
  (void)graph.AddEdge(c, d, "T").value();
  EXPECT_EQ(view->size(), 0);
  EdgeId bridge = graph.AddEdge(b, c, "T").value();
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.RemoveEdge(bridge).ok());
  EXPECT_EQ(view->size(), 0);
}

}  // namespace
}  // namespace pgivm
