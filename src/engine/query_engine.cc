#include "engine/query_engine.h"

#include <algorithm>

#include "algebra/compiler.h"
#include "algebra/plan_printer.h"
#include "baseline/baseline_evaluator.h"
#include "cypher/parser.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

Result<Query> ParseAndBind(std::string_view cypher,
                           const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseQuery(cypher));
  PGIVM_RETURN_IF_ERROR(SubstituteQueryParameters(query, parameters));
  return query;
}

void ApplySkipLimit(std::vector<Tuple>& rows, int64_t skip, int64_t limit) {
  if (skip > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip), rows.size());
    rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (limit >= 0 && rows.size() > static_cast<size_t>(limit)) {
    rows.resize(static_cast<size_t>(limit));
  }
}

}  // namespace

Result<std::shared_ptr<View>> QueryEngine::Register(
    std::string_view cypher, const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  return catalog_->Install(std::string(cypher), std::move(gra),
                           std::move(fra), query.return_clause.skip,
                           query.return_clause.limit);
}

Result<std::vector<Tuple>> QueryEngine::EvaluateOnce(
    std::string_view cypher, const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  BaselineEvaluator evaluator(graph_);
  PGIVM_ASSIGN_OR_RETURN(Bag bag, evaluator.Evaluate(fra));
  std::vector<Tuple> rows = BaselineEvaluator::SortedRows(bag);
  ApplySkipLimit(rows, query.return_clause.skip, query.return_clause.limit);
  return rows;
}

Result<OpPtr> QueryEngine::Compile(std::string_view cypher,
                                   const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  return LowerToFra(gra, options_.plan);
}

Result<std::string> QueryEngine::Explain(std::string_view cypher,
                                         const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  // The FRA dump carries each operator's canonical fingerprint — the key
  // the catalog's NodeRegistry shares by — so comparing two Explain
  // outputs shows exactly which sub-plans two views would share and where
  // sharing stops.
  PlanPrintOptions fra_print;
  fra_print.fingerprints = true;
  return StrCat("GRA (paper step 1):\n", PrintPlan(gra),
                "\nFRA (after steps 2-3):\n", PrintPlan(fra, fra_print));
}

}  // namespace pgivm
