#ifndef PGIVM_ALGEBRA_PASSES_PASS_MANAGER_H_
#define PGIVM_ALGEBRA_PASSES_PASS_MANAGER_H_

#include "algebra/operator.h"
#include "support/status.h"

namespace pgivm {

/// Plan lowering configuration. The defaults produce the paper's FRA plan;
/// the flags exist for the ablation experiments (E6). Runtime behaviour of
/// the instantiated network (delta propagation strategy, fine-grained
/// unnest) is configured separately via NetworkOptions in
/// rete/network_builder.h; EngineOptions bundles both.
struct PlanOptions {
  /// Infer the minimal property schema and push accesses into ◯/⇑ leaves
  /// (paper step 3). When false together with naive_property_maps, plans
  /// that read graph properties are rejected by the Rete builder.
  bool property_pushdown = true;

  /// Ablation mode: instead of per-property columns, leaves materialize the
  /// *entire* property map of each element and accesses become map lookups —
  /// what an engine without schema inference must do.
  bool naive_property_maps = false;

  /// Push selection conjuncts below joins toward the leaves.
  bool filter_pushdown = true;

  /// Drop extracted columns that no operator references.
  bool column_pruning = true;

  /// Drop columns from unnest *outputs* when they only feed the collection
  /// expression — the structural prerequisite of fine-grained unnest
  /// maintenance (FGN).
  bool narrow_unnest_outputs = true;

  /// Rewrite the lowered FRA plan into its canonical normal form (join
  /// regions flattened and deterministically re-ordered, filter conjuncts
  /// split/sorted/re-merged, commutative expression operands ordered, union
  /// branches sorted) so logically equal queries — MATCH clause
  /// permutations, alias renames, commuted WHERE conjuncts — reach the
  /// catalog's fingerprint registry as one plan and share one Rete
  /// sub-network. Results are unchanged; off = the PR-2 structural-only
  /// sharing, kept as the ablation baseline for the E3 canonical sweep.
  bool canonicalize = true;
};

/// Runs the full GRA → NRA → FRA lowering pipeline (paper steps 2 and 3) on
/// a schema-computed GRA tree and returns the flat, incrementally
/// instantiable plan (schemas recomputed and validated).
Result<OpPtr> LowerToFra(const OpPtr& gra, const PlanOptions& options = {});

// Individual passes, exposed for unit tests and the ablation benchmarks.

/// Paper step 2: rewrites every Expand into Join(input, GetEdges). The
/// transitive expand is already represented as kPathJoin (the get-edges
/// operand is fused into the node); this pass asserts no kExpand remains.
OpPtr RewriteExpandToJoin(const OpPtr& root);

/// Paper step 3: minimal schema inference. Rewrites property/labels/type/
/// properties accesses on pattern-bound graph elements into columns
/// extracted at the defining ◯/⇑ leaf, inserting pass-through projection
/// items (safe: extracts are functionally dependent on their element) and,
/// for elements that only exist at runtime (e.g. vertices unnested from a
/// path), joining in a fresh get-vertices/get-edges leaf keyed by the
/// element column. With `naive` set, leaves extract whole property maps
/// instead (the ablation plan). Requires schemas computed; leaves them
/// recomputed.
Status PushDownProperties(OpPtr& root, bool naive);

/// Pushes selection conjuncts below joins/distinct/unnest where their
/// variables allow. Requires schemas computed; returns a rewritten tree
/// (schemas stale).
OpPtr PushDownFilters(const OpPtr& root);

/// Removes extracted columns never referenced above their leaf. Safe
/// globally because a dropped name is dropped from every leaf at once and
/// extracts are functionally dependent columns. Mutates the tree in place.
void PruneUnusedExtracts(const OpPtr& root);

/// Marks unnest operators to drop the columns that only their collection
/// expression reads, when doing so is safe: the column is not a join key
/// anywhere and no DISTINCT/aggregate sits above the unnest (dropping a
/// column there could merge groups). Requires schemas computed; mutates in
/// place (schemas stale afterwards).
void NarrowUnnestOutputs(const OpPtr& root);

/// Canonical plan normalization (the last FRA pass; PlanOptions::
/// canonicalize). Rewrites the plan into a normal form chosen so that
/// logically equal plans become structurally — for same-alias spellings,
/// byte — identical:
///
///  * every maximal inner-join region (kJoin trees with interleaved
///    kSelection nodes) is flattened; its conjuncts are pulled up, its
///    leaves re-ordered by canonical fingerprint (connected leaves first,
///    so no cross product is introduced where the source had none) and
///    rebuilt left-deep; each conjunct is re-pushed to its deepest binding
///    site, and every selection site carries its conjuncts key-sorted,
///    deduplicated and re-merged into one σ;
///  * chains of semi-/anti-joins (exists() conjuncts) are re-ordered by
///    the canonical key of their probe side;
///  * union branches are flattened and key-sorted;
///  * commutative expression operands are ordered (CanonicalizeExpr) and
///    label/type/extract lists sorted in every leaf;
///  * projection / group-by / aggregate items are key-sorted (the Produce
///    root keeps its user-visible column order).
///
/// Output columns of every operator keep their *names*, so downstream
/// name-based binding — and therefore every view snapshot — is unchanged.
/// Requires schemas computed; returns a rewritten tree with schemas
/// recomputed.
Result<OpPtr> CanonicalizePlan(const OpPtr& root);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_PASSES_PASS_MANAGER_H_
