#ifndef PGIVM_RETE_PRODUCTION_NODE_H_
#define PGIVM_RETE_PRODUCTION_NODE_H_

#include <cstdint>
#include <vector>

#include "rete/node.h"

namespace pgivm {

/// Observer of a materialized view's changes. `delta` is normalized (tuples
/// coalesced, zero entries dropped) and describes the net effect of one
/// graph delta on the result bag.
class ViewChangeListener {
 public:
  virtual ~ViewChangeListener() = default;
  virtual void OnViewDelta(const Delta& delta) = 0;
};

/// Network root: materializes the result bag of the view and fans change
/// notifications out to listeners. Snapshot() exposes the current rows.
class ProductionNode : public ReteNode {
 public:
  explicit ProductionNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override;

  void Reset() override {
    results_.Clear();
    ++version_;
  }

  /// Current result bag (tuple -> multiplicity).
  const Bag& results() const { return results_; }

  /// Monotonic change counter: bumped whenever `results()` may have changed
  /// (non-empty delta applied, or Reset). Lets readers cache derived state
  /// (View::Snapshot's sorted rows) and skip recomputation while unchanged.
  uint64_t version() const { return version_; }

  /// Temporarily silences listener fan-out. The network disables
  /// notifications while (re-)priming an attachment: priming replays the
  /// whole graph content, which is not an observable *change* to a view
  /// that sharing-induced re-priming rebuilds to the same rows. Results are
  /// still applied and chained emissions still happen.
  void set_notify_listeners(bool on) { notify_listeners_ = on; }

  /// Rows with multiplicities expanded, sorted for determinism.
  std::vector<Tuple> SortedSnapshot() const;

  void AddListener(ViewChangeListener* listener) {
    listeners_.push_back(listener);
  }
  void RemoveListener(ViewChangeListener* listener);

  size_t ApproxMemoryBytes() const override {
    return results_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Production"; }

 private:
  Bag results_;
  std::vector<ViewChangeListener*> listeners_;
  uint64_t version_ = 0;
  bool notify_listeners_ = true;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PRODUCTION_NODE_H_
