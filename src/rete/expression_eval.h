#ifndef PGIVM_RETE_EXPRESSION_EVAL_H_
#define PGIVM_RETE_EXPRESSION_EVAL_H_

#include <memory>

#include "algebra/schema.h"
#include "cypher/expression.h"
#include "graph/property_graph.h"
#include "rete/tuple.h"
#include "support/status.h"

namespace pgivm {

/// An expression compiled against a schema: variable references are resolved
/// to column indices once, then Eval runs per tuple.
///
/// `graph` is optional. Rete nodes bind without a graph — after property
/// pushdown their expressions are pure tuple functions, and evaluating a
/// graph-dependent construct (property of a vertex/edge reference,
/// labels()/type()/properties() on a reference) without a graph yields null.
/// The baseline evaluator binds *with* the graph and evaluates those
/// constructs directly.
///
/// Semantics follow Cypher's ternary logic: comparisons and arithmetic with
/// null operands yield null; AND/OR/XOR/NOT are three-valued; selection
/// keeps rows whose predicate is exactly true.
class BoundExpression {
 public:
  /// Resolves `expr` against `schema`. Fails on unknown variables or on
  /// aggregate calls (those are handled by the aggregate node, not here).
  static Result<BoundExpression> Bind(const ExprPtr& expr,
                                      const Schema& schema,
                                      const PropertyGraph* graph = nullptr);

  Value Eval(const Tuple& tuple) const;

  const ExprPtr& expr() const { return expr_; }

 private:
  BoundExpression(ExprPtr expr, const Schema* schema,
                  const PropertyGraph* graph)
      : expr_(std::move(expr)), graph_(graph) {
    (void)schema;
  }

  Value EvalNode(const Expression& e, const Tuple& tuple) const;
  Value EvalUnary(const Expression& e, const Tuple& tuple) const;
  Value EvalBinary(const Expression& e, const Tuple& tuple) const;
  Value EvalFunction(const Expression& e, const Tuple& tuple) const;

  ExprPtr expr_;
  const PropertyGraph* graph_;
};

/// Evaluates truthiness for WHERE: true iff `v` is Bool(true).
inline bool IsTrue(const Value& v) { return v.is_bool() && v.AsBool(); }

}  // namespace pgivm

#endif  // PGIVM_RETE_EXPRESSION_EVAL_H_
