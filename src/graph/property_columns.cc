#include "graph/property_columns.h"

#include <cassert>

namespace pgivm {

namespace {

/// Shallow per-value heap estimate shared by both storage modes (matches
/// the accounting the memory experiments have always used).
size_t ValueShallowBytes(const Value& v) {
  size_t b = sizeof(Value);
  if (v.is_string()) b += v.AsString().size();
  if (v.is_list()) b += v.AsList().size() * sizeof(Value);
  if (v.is_map()) b += v.AsMap().size() * (sizeof(Value) + 16);
  return b;
}

}  // namespace

// ---- PropertyColumn --------------------------------------------------------

Value PropertyColumn::Get(int64_t id) const {
  if (PresentTyped(id)) {
    size_t i = static_cast<size_t>(id);
    switch (tag_) {
      case Tag::kInt64:
        return Value::Int(ints_[i]);
      case Tag::kDouble:
        return Value::Double(doubles_[i]);
      case Tag::kBool:
        return Value::Bool((bools_[i >> 6] >> (i & 63)) & 1u);
      case Tag::kUnset:
        break;  // unreachable: presence implies a tag
    }
  }
  if (!overflow_.empty()) {
    auto it = overflow_.find(id);
    if (it != overflow_.end()) return it->second;
  }
  return Value::Null();
}

void PropertyColumn::SetPresent(int64_t id) {
  size_t word = static_cast<size_t>(id) >> 6;
  if (word >= present_.size()) present_.resize(word + 1, 0);
  uint64_t bit = uint64_t{1} << (static_cast<size_t>(id) & 63);
  if (!(present_[word] & bit)) {
    present_[word] |= bit;
    ++typed_count_;
  }
}

void PropertyColumn::ClearPresent(int64_t id) {
  size_t word = static_cast<size_t>(id) >> 6;
  if (word >= present_.size()) return;
  uint64_t bit = uint64_t{1} << (static_cast<size_t>(id) & 63);
  if (present_[word] & bit) {
    present_[word] &= ~bit;
    --typed_count_;
  }
}

bool PropertyColumn::FitsLane(const Value& value) {
  if (tag_ == Tag::kUnset) {
    if (value.is_int()) {
      tag_ = Tag::kInt64;
    } else if (value.is_double()) {
      tag_ = Tag::kDouble;
    } else if (value.is_bool()) {
      tag_ = Tag::kBool;
    } else {
      return false;
    }
    return true;
  }
  switch (tag_) {
    case Tag::kInt64:
      return value.is_int();
    case Tag::kDouble:
      return value.is_double();
    case Tag::kBool:
      return value.is_bool();
    case Tag::kUnset:
      return false;
  }
  return false;
}

void PropertyColumn::Set(int64_t id, const Value& value) {
  assert(!value.is_null() && "null writes are erases; handled by the store");
  size_t i = static_cast<size_t>(id);
  if (FitsLane(value)) {
    switch (tag_) {
      case Tag::kInt64:
        if (i >= ints_.size()) ints_.resize(i + 1, 0);
        ints_[i] = value.AsInt();
        break;
      case Tag::kDouble:
        if (i >= doubles_.size()) doubles_.resize(i + 1, 0.0);
        doubles_[i] = value.AsDouble();
        break;
      case Tag::kBool: {
        size_t word = i >> 6;
        if (word >= bools_.size()) bools_.resize(word + 1, 0);
        uint64_t bit = uint64_t{1} << (i & 63);
        if (value.AsBool()) {
          bools_[word] |= bit;
        } else {
          bools_[word] &= ~bit;
        }
        break;
      }
      case Tag::kUnset:
        break;  // unreachable: FitsLane adopted a tag
    }
    SetPresent(id);
    if (!overflow_.empty()) overflow_.erase(id);  // value moved into the lane
    return;
  }
  ClearPresent(id);
  overflow_[id] = value;
}

void PropertyColumn::Erase(int64_t id) {
  ClearPresent(id);
  if (!overflow_.empty()) overflow_.erase(id);
}

size_t PropertyColumn::ApproxMemoryBytes() const {
  size_t bytes = present_.capacity() * sizeof(uint64_t) +
                 ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 bools_.capacity() * sizeof(uint64_t);
  for (const auto& [id, v] : overflow_) {
    bytes += sizeof(id) + ValueShallowBytes(v) + 16;  // node overhead
  }
  return bytes;
}

// ---- PropertyStore ---------------------------------------------------------

Value PropertyStore::Get(int64_t id, SymbolId key) const {
  if (typed_) {
    if (key >= columns_.size()) return Value::Null();
    return columns_[key].Get(id);
  }
  if (static_cast<size_t>(id) >= rows_.size()) return Value::Null();
  const ValueMap& row = rows_[static_cast<size_t>(id)];
  auto it = row.find(symbols_->Name(key));
  return it == row.end() ? Value::Null() : it->second;
}

bool PropertyStore::Has(int64_t id, SymbolId key) const {
  if (typed_) {
    return key < columns_.size() && columns_[key].Has(id);
  }
  return static_cast<size_t>(id) < rows_.size() &&
         rows_[static_cast<size_t>(id)].count(symbols_->Name(key)) > 0;
}

void PropertyStore::Set(int64_t id, SymbolId key, const Value& value) {
  if (typed_) {
    if (value.is_null()) {
      if (key < columns_.size()) columns_[key].Erase(id);
      return;
    }
    if (key >= columns_.size()) columns_.resize(key + 1);
    columns_[key].Set(id, value);
    return;
  }
  if (value.is_null()) {
    if (static_cast<size_t>(id) < rows_.size()) {
      rows_[static_cast<size_t>(id)].erase(symbols_->Name(key));
    }
    return;
  }
  if (static_cast<size_t>(id) >= rows_.size()) {
    rows_.resize(static_cast<size_t>(id) + 1);
  }
  rows_[static_cast<size_t>(id)][symbols_->Name(key)] = value;
}

void PropertyStore::ClearElement(int64_t id) {
  if (typed_) {
    for (PropertyColumn& column : columns_) column.Erase(id);
    return;
  }
  if (static_cast<size_t>(id) < rows_.size()) {
    rows_[static_cast<size_t>(id)].clear();
  }
}

ValueMap PropertyStore::Collect(int64_t id) const {
  if (typed_) {
    ValueMap out;
    for (SymbolId key = 0; key < columns_.size(); ++key) {
      if (!columns_[key].Has(id)) continue;
      out.emplace(symbols_->Name(key), columns_[key].Get(id));
    }
    return out;
  }
  if (static_cast<size_t>(id) >= rows_.size()) return {};
  return rows_[static_cast<size_t>(id)];
}

size_t PropertyStore::ApproxMemoryBytes() const {
  size_t bytes = 0;
  if (typed_) {
    bytes += columns_.capacity() * sizeof(PropertyColumn);
    for (const PropertyColumn& column : columns_) {
      bytes += column.ApproxMemoryBytes();
    }
    return bytes;
  }
  bytes += rows_.capacity() * sizeof(ValueMap);
  for (const ValueMap& row : rows_) {
    for (const auto& [k, v] : row) {
      bytes += k.size() + ValueShallowBytes(v) + 32;  // map node overhead
    }
  }
  return bytes;
}

}  // namespace pgivm
