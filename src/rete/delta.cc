#include "rete/delta.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace pgivm {

Delta Normalize(const Delta& delta) {
  Delta out = delta;
  Consolidate(out);
  return out;
}

namespace {

/// The canonical consolidation order: cached tuple hash, ties broken
/// lexicographically. Shared by the sort path and the small fast path so
/// both produce byte-identical results.
bool CanonicalLess(const DeltaEntry& a, const DeltaEntry& b) {
  size_t ha = a.tuple.Hash();
  size_t hb = b.tuple.Hash();
  if (ha != hb) return ha < hb;
  return Tuple::Compare(a.tuple, b.tuple) < 0;
}

/// Pairwise-merge consolidation for tiny payloads: O(k²) equality scans and
/// an insertion sort beat the sort machinery for the 1–2-entry deltas that
/// dominate single-change propagation. Produces exactly the canonical form
/// the sort path produces — including which *representation* survives a
/// merge of equal-but-distinct tuples (Int(1) vs Double(1.0) compare and
/// hash equal): both paths keep the first arrival.
void ConsolidateSmall(Delta& delta) {
  // Stable first-occurrence merge: entry i folds into the earliest equal
  // entry already kept, so surviving order (and representation) is arrival
  // order — matching the stable_sort path below.
  size_t kept = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    bool merged = false;
    for (size_t j = 0; j < kept; ++j) {
      if (delta[j].tuple == delta[i].tuple) {
        delta[j].multiplicity += delta[i].multiplicity;
        merged = true;
        break;
      }
    }
    if (!merged) {
      if (kept != i) delta[kept] = std::move(delta[i]);
      ++kept;
    }
  }
  delta.resize(kept);
  size_t write = 0;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i].multiplicity == 0) continue;
    if (write != i) delta[write] = std::move(delta[i]);
    ++write;
  }
  delta.resize(write);
  // Insertion sort into canonical order (entries are already distinct).
  for (size_t i = 1; i < delta.size(); ++i) {
    DeltaEntry entry = std::move(delta[i]);
    size_t j = i;
    while (j > 0 && CanonicalLess(entry, delta[j - 1])) {
      delta[j] = std::move(delta[j - 1]);
      --j;
    }
    delta[j] = std::move(entry);
  }
}

}  // namespace

void Consolidate(Delta& delta, size_t small_cutoff) {
  if (delta.size() <= 1) {
    if (delta.size() == 1 && delta[0].multiplicity == 0) delta.clear();
    return;
  }
  if (delta.size() <= small_cutoff) {
    ConsolidateSmall(delta);
    return;
  }
  // Sort into a canonical order (cached tuple hash, ties broken
  // lexicographically) and fold equal-tuple runs. This runs on every wave
  // of batched propagation, so avoiding per-entry hash-table nodes matters
  // more than preserving arrival order — normalized deltas carry each
  // tuple once, so their order is semantically irrelevant. The sort is
  // *stable* so that when equal-but-distinct representations merge
  // (Int(1) vs Double(1.0) compare equal), the first arrival survives —
  // deterministically, and identically to the small fast path above. This
  // is a knowing trade: stable_sort may allocate a temporary buffer
  // (measured ~10-20% slower than std::sort here), but representation
  // determinism is what keeps parallel waves bit-identical to serial, and
  // the dominant 1-2-entry payloads never reach this path.
  std::stable_sort(delta.begin(), delta.end(), CanonicalLess);
  size_t write = 0;
  for (size_t i = 0; i < delta.size();) {
    size_t j = i + 1;
    int64_t multiplicity = delta[i].multiplicity;
    while (j < delta.size() && delta[j].tuple == delta[i].tuple) {
      multiplicity += delta[j].multiplicity;
      ++j;
    }
    if (multiplicity != 0) {
      if (write != i) delta[write] = std::move(delta[i]);
      delta[write].multiplicity = multiplicity;
      ++write;
    }
    i = j;
  }
  delta.resize(write);
}

bool IsConsolidated(const Delta& delta) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i].multiplicity == 0) return false;
    if (i == 0) continue;
    size_t prev = delta[i - 1].tuple.Hash();
    size_t cur = delta[i].tuple.Hash();
    if (prev < cur) continue;
    if (prev > cur ||
        Tuple::Compare(delta[i - 1].tuple, delta[i].tuple) >= 0) {
      return false;
    }
  }
  return true;
}

std::string DeltaToString(const Delta& delta) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < delta.size(); ++i) {
    if (i > 0) os << ", ";
    os << (delta[i].multiplicity > 0 ? "+" : "") << delta[i].multiplicity
       << "x" << delta[i].tuple.ToString();
  }
  os << "}";
  return os.str();
}

std::pair<int64_t, int64_t> Bag::Apply(const Tuple& tuple,
                                       int64_t multiplicity) {
  auto it = counts_.find(tuple);
  int64_t old_count = it == counts_.end() ? 0 : it->second;
  int64_t new_count = old_count + multiplicity;
  assert(new_count >= 0 && "bag count went negative: upstream emitted a "
                           "retraction for a tuple it never asserted");
  total_ += multiplicity;
  if (new_count == 0) {
    if (it != counts_.end()) counts_.erase(it);
  } else if (it == counts_.end()) {
    counts_.emplace(tuple, new_count);
  } else {
    it->second = new_count;
  }
  return {old_count, new_count};
}

int64_t Bag::Count(const Tuple& tuple) const {
  auto it = counts_.find(tuple);
  return it == counts_.end() ? 0 : it->second;
}

size_t Bag::ApproxMemoryBytes() const {
  size_t bytes = counts_.bucket_count() * sizeof(void*);
  for (const auto& [tuple, count] : counts_) {
    bytes += sizeof(Tuple) + sizeof(int64_t);
    for (const Value& v : tuple.values()) bytes += v.ApproxMemoryBytes();
    (void)count;
  }
  return bytes;
}

}  // namespace pgivm
