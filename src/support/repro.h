#ifndef PGIVM_SUPPORT_REPRO_H_
#define PGIVM_SUPPORT_REPRO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "rete/network.h"
#include "support/status.h"

namespace pgivm {

/// One-line replay recipe for a differential-harness or SNB-driver
/// bit-parity failure: everything needed to rerun exactly the diverging
/// case locally — the RNG seed, the propagation strategy, the wave thread
/// count, whether morsel-partitioned delivery was forced, and the index of
/// the update batch at which the divergence was observed.
///
/// On any parity failure the harnesses print `EnvLine()`
/// (`PGIVM_REPRO=seed=42,strategy=batched,threads=8,morsel=1,step=17`);
/// exporting that variable makes the randomized differential harness skip
/// every non-matching case (so one `ctest -R Randomized` reruns only the
/// flake) and makes the SNB example replay that validation case. The
/// `step` field is informational — streams are deterministic, so replaying
/// the whole case reproduces the failure at the recorded step.
struct ReproSpec {
  uint64_t seed = 0;
  PropagationStrategy strategy = PropagationStrategy::kBatched;
  int threads = 1;
  bool morsel = false;
  /// Update-batch index of the observed divergence; -1 = end-state check.
  int64_t step = -1;

  /// `seed=42,strategy=batched,threads=8,morsel=1,step=17`.
  std::string Format() const;

  /// `PGIVM_REPRO="<Format()>"` — copy-paste-able shell prefix.
  std::string EnvLine() const;

  /// True when `other` names the same engine configuration (seed,
  /// strategy, threads, morsel); `step` is ignored — it records where the
  /// failure surfaced, not which case to run.
  bool SameCase(const ReproSpec& other) const;

  /// Parses the Format() syntax. Unknown keys, malformed numbers and
  /// unknown strategy names are errors; every field except `step` is
  /// required.
  static Result<ReproSpec> Parse(const std::string& text);

  /// Reads PGIVM_REPRO. Unset returns nullopt; a malformed value warns on
  /// stderr and returns nullopt (the harness then runs normally rather
  /// than silently skipping everything).
  static std::optional<ReproSpec> FromEnv();
};

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_REPRO_H_
