#ifndef PGIVM_RETE_NETWORK_BUILDER_H_
#define PGIVM_RETE_NETWORK_BUILDER_H_

#include <memory>

#include "algebra/operator.h"
#include "graph/property_graph.h"
#include "rete/network.h"
#include "support/status.h"

namespace pgivm {

struct NetworkOptions {
  /// Fold unnest deltas per kept-column projection and emit element-level
  /// differences (the FGN behaviour). Off = the E4 ablation baseline.
  bool fine_grained_unnest = true;

  /// How deltas travel through the network (see PropagationStrategy).
  /// kBatched consolidates per-(node, port) queues between topological
  /// waves — the default; kEager is the seed's per-change recursion.
  PropagationStrategy propagation = PropagationStrategy::kBatched;
};

/// Instantiates the FRA plan (paper step 4) as a Rete network over `graph`.
/// The network is built detached; call Attach() to start maintenance.
///
/// Lowerings performed here:
///  * transitive join → Join(input, PathInputNode) — the path store is the
///    fused get-edges side of the paper's ./∗ operator;
///  * left outer join → Join ∪ (AntiJoin → null-pad Projection);
///  * Produce → Projection feeding the ProductionNode (the view root).
Result<std::unique_ptr<ReteNetwork>> BuildNetwork(
    const OpPtr& plan, const PropertyGraph* graph,
    const NetworkOptions& options = {});

}  // namespace pgivm

#endif  // PGIVM_RETE_NETWORK_BUILDER_H_
