#include "rete/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace pgivm {

const char* PropagationStrategyName(PropagationStrategy strategy) {
  switch (strategy) {
    case PropagationStrategy::kEager:
      return "eager";
    case PropagationStrategy::kBatched:
      return "batched";
  }
  return "?";
}

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kParallel:
      return "parallel";
  }
  return "?";
}

ReteNetwork::~ReteNetwork() { Detach(); }

void ReteNetwork::SetProduction(ProductionNode* production) {
  production_ = production;
  if (production != nullptr &&
      std::find(productions_.begin(), productions_.end(), production) ==
          productions_.end()) {
    productions_.push_back(production);
  }
}

void ReteNetwork::set_propagation(PropagationStrategy strategy) {
  assert(attached_graph_ == nullptr &&
         "change the propagation strategy before Attach");
  if (attached_graph_ != nullptr) return;  // sinks are installed per Attach
  propagation_ = strategy;
}

void ReteNetwork::set_executor(ExecutorKind kind, int num_threads) {
  assert(attached_graph_ == nullptr && "change the executor before Attach");
  if (attached_graph_ != nullptr) return;  // the pool is built per Attach
  executor_ = kind;
  executor_threads_ = num_threads;
}

void ReteNetwork::Attach(PropertyGraph* graph) {
  assert(graph != nullptr);
  if (graph == nullptr) return;
  assert(production_ != nullptr && "Attach requires a production node");
  if (production_ == nullptr) return;
  if (attached_graph_ == graph) return;  // double-attach: no-op
  // The source nodes read the graph they were constructed over; attaching
  // the network to any other graph would prime from one store while
  // subscribing to another. Rejected before touching the current
  // attachment, so a bad call leaves the network in its previous state.
  assert((primed_graph_ == nullptr || primed_graph_ == graph) &&
         "a network can only be (re-)attached to the graph it was built "
         "over");
  if (primed_graph_ != nullptr && primed_graph_ != graph) return;
  if (attached_graph_ != nullptr) Detach();

  // A re-attach re-primes from scratch: wipe whatever the previous
  // attachment left in the node memories.
  if (primed_graph_ != nullptr) {
    for (const auto& node : nodes_) node->Reset();
  }
  primed_graph_ = graph;

  const bool batched = propagation_ == PropagationStrategy::kBatched;
  // The executor only affects batched wave scheduling; the eager cascade is
  // a depth-first recursion with no parallel unit. A resolved parallelism
  // of 1 keeps the serial fast path (no pool, no dispatch).
  if (batched && executor_ == ExecutorKind::kParallel) {
    int threads = ThreadPool::ResolveThreadCount(executor_threads_);
    if (threads > 1 &&
        (pool_ == nullptr || pool_->parallelism() != threads)) {
      pool_ = std::make_unique<ThreadPool>(threads);
    }
    if (threads <= 1) pool_.reset();
  } else {
    pool_.reset();
  }
  if (batched) {
    PrepareScheduler();
  } else {
    // Drop any scheduler state a previous batched attachment left behind,
    // so node_level()/DebugString() don't report defunct levels.
    states_.clear();
    ready_by_level_.clear();
  }
  for (const auto& node : nodes_) {
    node->set_emit_sink(batched ? this : nullptr);
  }
  // Under parallel waves, listener callbacks must not run on pool workers
  // (user code; two productions in one wave would fire concurrently) —
  // productions buffer them and the barrier flushes serially, in ready
  // order, preserving the serial executor's threading contract.
  for (ProductionNode* production : productions_) {
    production->set_defer_notifications(pool_ != nullptr);
  }

  attached_graph_ = graph;
  // Priming replays the whole graph content; it rebuilds every production
  // to its correct rows but is not an observable *change*, so listener
  // fan-out is silenced for the duration (results and chained emissions
  // are unaffected). This matters for catalog networks, where registering
  // one more view re-primes the views already being observed.
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(false);
  }
  buffering_ = true;
  for (const auto& node : nodes_) node->EmitInitial();
  for (GraphSourceNode* source : sources_) source->EmitInitialFromGraph();
  buffering_ = false;
  if (batched) DrainWaves();
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(true);
  }
  graph->AddListener(this);
}

void ReteNetwork::Detach() {
  if (attached_graph_ == nullptr) return;
  attached_graph_->RemoveListener(this);
  attached_graph_ = nullptr;
}

void ReteNetwork::RemoveNodes(const std::vector<ReteNode*>& victims) {
  if (victims.empty()) return;
  assert(!draining_ && "cannot remove nodes mid-wave");
  std::unordered_set<const ReteNode*> gone(victims.begin(), victims.end());

  // Surviving upstream nodes must stop fanning out into freed memory.
  for (const auto& node : nodes_) {
    if (gone.count(node.get()) == 0) node->RemoveOutputsTo(gone);
  }

  auto is_gone = [&gone](const auto* ptr) { return gone.count(ptr) > 0; };
  sources_.erase(
      std::remove_if(sources_.begin(), sources_.end(),
                     [&](GraphSourceNode* source) {
                       // Sources are also ReteNodes; match via dynamic
                       // identity by scanning the victim set of node
                       // pointers (every registered source was Add()ed).
                       return gone.count(dynamic_cast<ReteNode*>(source)) > 0;
                     }),
      sources_.end());
  productions_.erase(std::remove_if(productions_.begin(), productions_.end(),
                                    [&](ProductionNode* p) {
                                      return is_gone(p);
                                    }),
                     productions_.end());
  if (production_ != nullptr && is_gone(production_)) {
    production_ = productions_.empty() ? nullptr : productions_.back();
  }
  for (const ReteNode* victim : gone) states_.erase(victim);
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [&](const std::unique_ptr<ReteNode>& node) {
                                return is_gone(node.get());
                              }),
               nodes_.end());

  // Levels / scheduler state reference the old shape; recompute while the
  // network keeps maintaining (survivor memories are untouched).
  if (attached_graph_ != nullptr &&
      propagation_ == PropagationStrategy::kBatched) {
    PrepareScheduler();
  }
}

void ReteNetwork::OnGraphDelta(const GraphDelta& delta) {
  ++deltas_processed_;
  changes_processed_ += static_cast<int64_t>(delta.changes.size());
  // Eager: each HandleChange cascades depth-first on its own. Batched: the
  // emit sinks buffer the sources' relational deltas while the *entire*
  // graph delta is translated, and DrainWaves then moves them through the
  // network level by level, one consolidated delta per (node, port).
  buffering_ = true;
  for (const GraphChange& change : delta.changes) {
    for (GraphSourceNode* source : sources_) {
      source->HandleChange(change);
    }
  }
  buffering_ = false;
  if (propagation_ == PropagationStrategy::kBatched) DrainWaves();
}

void ReteNetwork::OnEmit(ReteNode* from, Delta delta) {
  NodeState& state = states_.at(from);
  if (state.out.empty()) {
    state.out = std::move(delta);
  } else {
    state.out.insert(state.out.end(),
                     std::make_move_iterator(delta.begin()),
                     std::make_move_iterator(delta.end()));
  }
  EnqueueReady(from, state);
  // An emission outside this network's own translate/drain cycle means one
  // of our nodes was fed externally (chained views: another network
  // delivering into us). Drain immediately so chained results never go
  // stale waiting for our next graph delta.
  if (!buffering_ && !draining_) DrainWaves();
}

ReteNetwork::PendingDelta& ReteNetwork::PendingFor(NodeState& state,
                                                   int port) {
  auto it = state.pending.begin();
  while (it != state.pending.end() && it->first < port) ++it;
  if (it == state.pending.end() || it->first != port) {
    it = state.pending.emplace(it, port, PendingDelta{});
  }
  return it->second;
}

void ReteNetwork::PrepareScheduler() {
  states_.clear();
  states_.reserve(nodes_.size());
  // Every node reachable through the output wiring gets scheduler state —
  // including subscribers the network does not own (chained views, test
  // probes), discovered transitively: they have no sink installed, so what
  // they emit cascades eagerly, but the nodes *they* feed must still be
  // levelled above them or a wave could enqueue into an already-drained
  // level bucket.
  std::vector<ReteNode*> reachable;
  reachable.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    states_[node.get()].owned = true;
    reachable.push_back(node.get());
  }
  for (size_t i = 0; i < reachable.size(); ++i) {
    for (const auto& [down, port] : reachable[i]->outputs()) {
      (void)port;
      if (states_.emplace(down, NodeState{}).second) reachable.push_back(down);
    }
  }
  // Relax levels to a fixpoint: level(downstream) > level(upstream). Nodes
  // are added bottom-up so one pass normally suffices; the loop guards
  // against exotic wiring orders (and rejects cycles without hanging).
  int max_level = 0;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    assert(rounds <= reachable.size() + 1 && "cycle in the Rete network");
    if (rounds > reachable.size() + 1) break;  // cycle: fail bounded
    for (ReteNode* node : reachable) {
      int level = states_.at(node).level;
      for (const auto& [down, port] : node->outputs()) {
        (void)port;
        NodeState& dst = states_.at(down);
        if (dst.level < level + 1) {
          dst.level = level + 1;
          max_level = std::max(max_level, dst.level);
          changed = true;
        }
      }
    }
  }
  ready_by_level_.assign(static_cast<size_t>(max_level) + 1, {});
}

void ReteNetwork::EnqueueReady(ReteNode* node, NodeState& state) {
  if (state.queued) return;
  state.queued = true;
  ready_by_level_[static_cast<size_t>(state.level)].push_back(node);
}

void ReteNetwork::DeliverPending(ReteNode* node, NodeState& state) {
  for (auto& [port, pending] : state.pending) {
    if (!pending.clean) Consolidate(pending.delta, consolidation_cutoff_);
    if (!pending.delta.empty()) node->OnDelta(port, pending.delta);
    // Empty in place (not pending.clear()): the slots and their Delta
    // buffers survive, so steady-state waves do not re-allocate.
    pending.delta.clear();
    pending.clean = false;
  }
  // Consolidating the response here (rather than in FlushNode) puts the
  // sort inside the parallel phase when the wave runs on the pool.
  Consolidate(state.out, consolidation_cutoff_);
}

void ReteNetwork::FlushNode(ReteNode* node, NodeState& state) {
  if (state.out.empty()) return;
  node->AddEmittedEntries(static_cast<int64_t>(state.out.size()));
  const auto& outputs = node->outputs();
  for (size_t i = 0; i < outputs.size(); ++i) {
    const auto& [down, port] = outputs[i];
    auto dst_it = states_.find(down);
    if (dst_it == states_.end()) {
      // Subscriber wired after Attach (no scheduler state): deliver
      // directly, eager-style.
      down->OnDelta(port, state.out);
      continue;
    }
    NodeState& dst = dst_it->second;
    PendingDelta& pending = PendingFor(dst, port);
    if (pending.delta.empty()) {
      // Single consolidated flush: swap (for the last subscriber) and mark
      // clean so delivery skips re-consolidation. A swap rather than a
      // move, so the pending slot's previous-wave buffer comes back as the
      // node's staging buffer instead of being freed — steady-state waves
      // recycle capacity in both directions.
      if (i + 1 == outputs.size()) {
        std::swap(pending.delta, state.out);
      } else {
        pending.delta = state.out;
      }
      pending.clean = true;
    } else {
      pending.delta.insert(pending.delta.end(), state.out.begin(),
                           state.out.end());
      pending.clean = false;
    }
    EnqueueReady(down, dst);
  }
  state.out.clear();
}

void ReteNetwork::DrainWaves() {
  draining_ = true;
  const bool parallel = pool_ != nullptr;
  for (auto& ready : ready_by_level_) {
    // Appends only target strictly higher levels, so iterating by index
    // while lower levels flush into this one is safe; a level never grows
    // while it is being drained.
    const bool wave_parallel = parallel && ready.size() > 1;
    if (wave_parallel) {
      // Phase 1 — the wave's owned nodes run data-parallel. Each node is
      // claimed by exactly one worker, so node memories and the per-node
      // staging slot (state.out) are single-writer; OnEmit under a live
      // wave only appends to the emitting node's own slot (the node is
      // already queued, so no ready-list mutation). Foreign subscribers
      // (no sink) would cascade eagerly into other nodes, so they stay
      // out of this phase and run at the barrier below.
      wave_scratch_.clear();
      for (ReteNode* node : ready) {
        if (states_.at(node).owned) wave_scratch_.push_back(node);
      }
      if (wave_scratch_.size() > 1) {
        pool_->Run(wave_scratch_.size(), [this](size_t i) {
          ReteNode* node = wave_scratch_[i];
          DeliverPending(node, states_.at(node));
        });
      } else if (!wave_scratch_.empty()) {
        DeliverPending(wave_scratch_[0], states_.at(wave_scratch_[0]));
      }
    }
    // Phase 2 — the barrier merge: flush every node's staged output
    // downstream in ready order, exactly the sequence the serial drain
    // produces, so pending queues (and with them every delivered delta)
    // are bit-identical regardless of thread count. Nodes phase 1 did not
    // deliver (serial waves; foreign nodes, whose eager cascade must not
    // run on a worker) run their delivery here, in their ready position.
    for (size_t i = 0; i < ready.size(); ++i) {
      ReteNode* node = ready[i];
      NodeState& state = states_.at(node);
      if (!wave_parallel || !state.owned) DeliverPending(node, state);
      FlushNode(node, state);
      node->OnWaveBarrier();  // deferred listener notifications etc.
      // Cleared only after the flush: emissions from the node's own wave
      // must not re-enqueue it (nothing new can arrive at this level).
      state.queued = false;
    }
    ready.clear();
  }
  // Safety net for productions fed through FlushNode's direct (non-
  // scheduled) delivery branch: they buffer notifications without ever
  // entering a ready list, so no per-wave barrier reaches them. No-op for
  // productions with nothing buffered.
  if (parallel) {
    for (ProductionNode* production : productions_) {
      production->OnWaveBarrier();
    }
  }
  draining_ = false;
}

int ReteNetwork::node_level(const ReteNode* node) const {
  auto it = states_.find(node);
  return it == states_.end() ? -1 : it->second.level;
}

int64_t ReteNetwork::TotalEmittedEntries() const {
  int64_t total = 0;
  for (const auto& node : nodes_) total += node->emitted_entries();
  return total;
}

size_t ReteNetwork::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& node : nodes_) bytes += node->ApproxMemoryBytes();
  return bytes;
}

std::string ReteNetwork::DebugString() const {
  std::ostringstream os;
  os << "propagation=" << PropagationStrategyName(propagation_)
     << " executor=" << ExecutorKindName(executor_);
  if (pool_ != nullptr) os << "(" << pool_->parallelism() << ")";
  os << "\n";
  for (const auto& node : nodes_) {
    os << node->DebugString();
    int level = node_level(node.get());
    if (level >= 0) os << "  level=" << level;
    os << "  mem=" << node->ApproxMemoryBytes()
       << "B emitted=" << node->emitted_entries() << "\n";
  }
  return os.str();
}

}  // namespace pgivm
