#include "rete/path_node.h"

#include <algorithm>
#include <cassert>

#include "support/string_util.h"

namespace pgivm {

namespace {

constexpr int64_t kUnboundedLimit = int64_t{1} << 40;

}  // namespace

PathInputNode::PathInputNode(Schema schema, const PropertyGraph* graph,
                             std::vector<std::string> types, bool reversed,
                             int64_t min_hops, int64_t max_hops,
                             bool emit_path)
    : ReteNode(std::move(schema)),
      graph_(graph),
      types_(std::move(types)),
      reversed_(reversed),
      min_hops_(min_hops),
      max_hops_(max_hops),
      emit_path_(emit_path) {
  type_refs_.reserve(types_.size());
  for (const std::string& type : types_) type_refs_.emplace_back(type);
}

void PathInputNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  (void)delta;
  assert(false && "path nodes have no upstream");
}

bool PathInputNode::TypeMatches(const std::string& type) const {
  if (types_.empty()) return true;
  return std::find(types_.begin(), types_.end(), type) != types_.end();
}

bool PathInputNode::TypeMatchesId(SymbolId type) const {
  if (types_.empty()) return true;
  const SymbolTable& symbols = graph_->symbols();
  for (const SymbolRef& ref : type_refs_) {
    if (ref.Resolve(symbols) == type) return true;
  }
  return false;
}

Tuple PathInputNode::MakeTuple(const Path& path) const {
  std::vector<Value> values;
  values.reserve(emit_path_ ? 3 : 2);
  values.push_back(Value::Vertex(path.source()));
  values.push_back(Value::Vertex(path.target()));
  if (emit_path_) values.push_back(Value::MakePath(path));
  return Tuple(std::move(values));
}

void PathInputNode::ForEachStep(
    VertexId a, const std::function<void(EdgeId, VertexId)>& fn) const {
  const std::vector<EdgeId>& edges =
      reversed_ ? graph_->InEdges(a) : graph_->OutEdges(a);
  for (EdgeId e : edges) {
    if (!TypeMatchesId(graph_->EdgeTypeId(e))) continue;
    fn(e, reversed_ ? graph_->EdgeSource(e) : graph_->EdgeTarget(e));
  }
}

void PathInputNode::ForEachReverseStep(
    VertexId a, const std::function<void(EdgeId, VertexId)>& fn) const {
  const std::vector<EdgeId>& edges =
      reversed_ ? graph_->OutEdges(a) : graph_->InEdges(a);
  for (EdgeId e : edges) {
    if (!TypeMatchesId(graph_->EdgeTypeId(e))) continue;
    fn(e, reversed_ ? graph_->EdgeTarget(e) : graph_->EdgeSource(e));
  }
}

void PathInputNode::DfsForward(VertexId start, int64_t limit,
                               std::unordered_set<EdgeId>& used,
                               std::vector<VertexId>& vertices,
                               std::vector<EdgeId>& edges,
                               const TrailCallback& cb) const {
  cb(vertices, edges);
  if (limit <= 0) return;
  ForEachStep(vertices.back(), [&](EdgeId e, VertexId next) {
    if (!used.insert(e).second) return;
    edges.push_back(e);
    vertices.push_back(next);
    DfsForward(start, limit - 1, used, vertices, edges, cb);
    vertices.pop_back();
    edges.pop_back();
    used.erase(e);
  });
}

void PathInputNode::DfsBackward(VertexId end, int64_t limit,
                                std::unordered_set<EdgeId>& used,
                                std::vector<VertexId>& vertices_rev,
                                std::vector<EdgeId>& edges_rev,
                                const TrailCallback& cb) const {
  // vertices_rev runs [end, ..., first]; present the pattern order.
  std::vector<VertexId> vertices(vertices_rev.rbegin(), vertices_rev.rend());
  std::vector<EdgeId> edges(edges_rev.rbegin(), edges_rev.rend());
  cb(vertices, edges);
  if (limit <= 0) return;
  ForEachReverseStep(vertices_rev.back(), [&](EdgeId e, VertexId prev) {
    if (!used.insert(e).second) return;
    edges_rev.push_back(e);
    vertices_rev.push_back(prev);
    DfsBackward(end, limit - 1, used, vertices_rev, edges_rev, cb);
    vertices_rev.pop_back();
    edges_rev.pop_back();
    used.erase(e);
  });
}

int64_t PathInputNode::ForwardLimit() const {
  return max_hops_ < 0 ? kUnboundedLimit : max_hops_;
}

void PathInputNode::AddPath(Path path, Delta& out) {
  // A trail already stored was found again via another of its edges (they
  // can both be new in one multi-change graph delta): assert it only once.
  if (!trail_keys_.insert(path.edges()).second) return;
  int64_t id = next_path_id_++;
  out.push_back({MakeTuple(path), 1});
  for (EdgeId e : path.edges()) edge_index_[e].push_back(id);
  paths_.emplace(id, std::move(path));
}

void PathInputNode::RemovePathsContaining(EdgeId e, Delta& out) {
  auto it = edge_index_.find(e);
  if (it == edge_index_.end()) return;
  std::vector<int64_t> ids = it->second;
  for (int64_t id : ids) {
    auto pit = paths_.find(id);
    if (pit == paths_.end()) continue;  // Already removed via another edge.
    out.push_back({MakeTuple(pit->second), -1});
    for (EdgeId pe : pit->second.edges()) {
      auto eit = edge_index_.find(pe);
      if (eit == edge_index_.end()) continue;
      auto& vec = eit->second;
      vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
      if (vec.empty()) edge_index_.erase(eit);
    }
    trail_keys_.erase(pit->second.edges());
    paths_.erase(pit);
  }
}

void PathInputNode::HandleChange(const GraphChange& change) {
  Delta out;
  switch (change.kind) {
    case GraphChange::Kind::kAddEdge: {
      if (!TypeMatches(change.edge_type)) return;
      // A later change in the same batch may have removed this edge again
      // (possibly detach-removing an endpoint, whose adjacency is gone from
      // the post-batch graph the DFS walks). Every trail through it would be
      // retracted by that change's kRemoveEdge, so skip the enumeration.
      if (!graph_->HasEdge(change.edge)) return;
      // The new trails are exactly those through the new edge:
      // prefix · e · suffix, with prefix ending at e's pattern anchor and
      // suffix starting at its pattern successor, all edges distinct.
      VertexId anchor = reversed_ ? change.dst : change.src;
      VertexId successor = reversed_ ? change.src : change.dst;
      int64_t limit = ForwardLimit();
      std::unordered_set<EdgeId> used{change.edge};
      std::vector<VertexId> pre_vertices{anchor};
      std::vector<EdgeId> pre_edges;
      DfsBackward(
          anchor, limit - 1, used, pre_vertices, pre_edges,
          [&](const std::vector<VertexId>& pv, const std::vector<EdgeId>& pe) {
            int64_t remaining =
                limit - 1 - static_cast<int64_t>(pe.size());
            std::vector<VertexId> suf_vertices{successor};
            std::vector<EdgeId> suf_edges;
            // `used` currently contains e plus the prefix edges, so the
            // suffix enumeration is automatically edge-disjoint.
            DfsForward(successor, remaining, used, suf_vertices, suf_edges,
                       [&](const std::vector<VertexId>& sv,
                           const std::vector<EdgeId>& se) {
                         int64_t length = static_cast<int64_t>(pe.size()) + 1 +
                                          static_cast<int64_t>(se.size());
                         if (length < std::max<int64_t>(min_hops_, 1)) return;
                         std::vector<VertexId> vertices = pv;
                         vertices.insert(vertices.end(), sv.begin(), sv.end());
                         std::vector<EdgeId> edges = pe;
                         edges.push_back(change.edge);
                         edges.insert(edges.end(), se.begin(), se.end());
                         AddPath(Path(std::move(vertices), std::move(edges)),
                                 out);
                       });
          });
      break;
    }
    case GraphChange::Kind::kRemoveEdge:
      if (!TypeMatches(change.edge_type)) return;
      RemovePathsContaining(change.edge, out);
      break;
    case GraphChange::Kind::kAddVertex:
      if (min_hops_ == 0) {
        zero_asserted_.insert(change.vertex);
        out.push_back({MakeTuple(Path::Single(change.vertex)), 1});
      }
      break;
    case GraphChange::Kind::kRemoveVertex:
      if (min_hops_ == 0 && zero_asserted_.erase(change.vertex) > 0) {
        out.push_back({MakeTuple(Path::Single(change.vertex)), -1});
      }
      break;
    default:
      return;
  }
  Emit(std::move(out));
}

void PathInputNode::EmitInitialFromGraph() {
  Delta out;
  int64_t limit = ForwardLimit();
  graph_->ForEachVertex([&](VertexId v) {
    if (min_hops_ == 0) {
      zero_asserted_.insert(v);
      out.push_back({MakeTuple(Path::Single(v)), 1});
    }
    std::unordered_set<EdgeId> used;
    std::vector<VertexId> vertices{v};
    std::vector<EdgeId> edges;
    DfsForward(v, limit, used, vertices, edges,
               [&](const std::vector<VertexId>& pv,
                   const std::vector<EdgeId>& pe) {
                 int64_t length = static_cast<int64_t>(pe.size());
                 if (length < std::max<int64_t>(min_hops_, 1)) return;
                 AddPath(Path(pv, pe), out);
               });
  });
  Emit(std::move(out));
}

bool PathInputNode::ReplayOutput(Delta& out) const {
  out.reserve(out.size() + zero_asserted_.size() + paths_.size());
  for (VertexId v : zero_asserted_) {
    out.push_back({MakeTuple(Path::Single(v)), 1});
  }
  for (const auto& [id, path] : paths_) {
    (void)id;
    out.push_back({MakeTuple(path), 1});
  }
  return true;
}

size_t PathInputNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [id, path] : paths_) {
    bytes += sizeof(int64_t) + sizeof(Path) +
             path.vertices().size() * sizeof(VertexId) +
             path.edges().size() * sizeof(EdgeId) * 2;  // + index entry
  }
  bytes += zero_asserted_.size() * sizeof(VertexId) * 2;
  return bytes;
}

std::string PathInputNode::DebugString() const {
  return StrCat("Paths[:", StrJoin(types_, "|"), "*", min_hops_, "..",
                max_hops_ < 0 ? std::string("") : StrCat(max_hops_),
                reversed_ ? " reversed" : "", "]");
}

}  // namespace pgivm
