#ifndef PGIVM_RETE_NETWORK_H_
#define PGIVM_RETE_NETWORK_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/property_graph.h"
#include "rete/input_node.h"
#include "rete/node.h"
#include "rete/production_node.h"
#include "support/metrics.h"
#include "support/thread_pool.h"

namespace pgivm {

/// How a network moves deltas from its source nodes to the production.
enum class PropagationStrategy {
  /// Per-change depth-first recursion: every GraphChange is translated and
  /// cascaded through the whole network on its own. Simple, but an N-change
  /// batch costs N full traversals and inverse pairs (+t/−t on the same
  /// tuple) are propagated instead of cancelled. Kept as the ablation
  /// baseline and for latency-sensitive single-change streams.
  kEager,

  /// Batched, topologically scheduled waves: the whole GraphDelta is first
  /// translated into one buffered relational delta per source, then nodes
  /// are drained level by level, each receiving one *consolidated* delta
  /// per input port per wave. Inverse pairs cancel before delivery, so a
  /// batch that adds and removes the same tuple propagates nothing.
  kBatched,
};

const char* PropagationStrategyName(PropagationStrategy strategy);

/// How the batched scheduler executes the nodes of one topological wave.
/// Nodes inside a wave have no data dependencies (levels are strict), so
/// they can be processed concurrently without changing any result.
enum class ExecutorKind {
  /// One thread drains the wave in ready order (the PR-1 behaviour).
  kSerial,

  /// A persistent worker pool processes the wave's nodes concurrently.
  /// Each node is claimed by exactly one worker (node memories need no
  /// locks) and emissions land in per-node staging buffers that the wave
  /// barrier merges in ready order — downstream deliveries are therefore
  /// bit-identical to serial execution regardless of thread count. Only
  /// meaningful under PropagationStrategy::kBatched; the eager cascade is
  /// inherently sequential.
  kParallel,
};

const char* ExecutorKindName(ExecutorKind kind);

/// One compiled Rete network: owns its nodes, routes graph deltas into the
/// source nodes, and exposes the production (view) root.
///
/// Lifecycle: the builder wires the nodes bottom-up; Attach() then (a) emits
/// structural initial output (key-less aggregates), (b) feeds the current
/// graph content through the source nodes, and (c) subscribes to the graph.
/// Detach() (or destruction) unsubscribes. Re-attaching after Detach()
/// resets every node memory and primes the network afresh; attaching twice
/// to the same graph is a no-op. A network is permanently bound to the
/// graph its source nodes were built over — attaching it to a *different*
/// graph is rejected (the sources read their construction-time graph).
/// Nodes may also be added *after* Attach (catalog registrations):
/// PrimeNewNodes splices them in — fresh sources prime from the graph,
/// reused upstream nodes replay their memories along the new edges — while
/// the network keeps maintaining; RemoveNodes splices refcount-zero nodes
/// back out.
///
/// Thread-safety: the public API must be driven from one thread (the one
/// that owns the graph and applies deltas). Parallelism happens only
/// *inside* a batched drain: under ExecutorKind::kParallel each wave's
/// nodes are claimed by pool workers with single-writer memories and
/// staging slots, merged at a barrier in ready order — results are
/// bit-identical to serial execution for every thread count. Listener
/// callbacks always run on the draining thread (deferred to the wave
/// barrier under a parallel pool), never concurrently.
class ReteNetwork : public GraphListener, private EmitSink {
 public:
  ReteNetwork() = default;
  ~ReteNetwork() override;

  ReteNetwork(const ReteNetwork&) = delete;
  ReteNetwork& operator=(const ReteNetwork&) = delete;

  /// Transfers ownership of `node` into the network; returns the raw
  /// pointer for wiring. Nodes must be added in topological (bottom-up)
  /// order — EmitInitial relies on it.
  template <typename NodeT>
  NodeT* Add(std::unique_ptr<NodeT> node) {
    NodeT* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  void RegisterSource(GraphSourceNode* source) {
    sources_.push_back(source);
  }

  /// Declares `production` as a view root of this network and makes it the
  /// primary production. A multi-view (catalog) network calls this once per
  /// registered view; all declared productions get their listener fan-out
  /// suppressed while an Attach primes the node memories.
  void SetProduction(ProductionNode* production);

  ProductionNode* production() const { return production_; }
  const std::vector<ProductionNode*>& productions() const {
    return productions_;
  }

  /// Selects the propagation strategy. Must be called before Attach().
  void set_propagation(PropagationStrategy strategy);
  PropagationStrategy propagation() const { return propagation_; }

  /// Selects the wave executor. `num_threads` is the total parallelism for
  /// kParallel (0 = hardware concurrency); the pool is created at Attach()
  /// and persists across waves. Must be called before Attach(). kParallel
  /// with a resolved parallelism of 1 degrades to serial execution.
  void set_executor(ExecutorKind kind, int num_threads = 0);
  ExecutorKind executor() const { return executor_; }

  /// Lends a pre-built worker pool for kParallel waves instead of having
  /// this network spawn its own at Attach(). The ViewCatalog shares one
  /// pool across every network its engine creates, so disabling
  /// operator-state sharing no longer costs a thread pool per view. Must
  /// be called before Attach(); the pool's parallelism must equal the
  /// resolved thread count (asserted). The pool is used from the draining
  /// thread only — graph listeners run sequentially, so sibling networks
  /// on one graph never dispatch concurrently.
  void set_thread_pool(std::shared_ptr<ThreadPool> pool);

  /// The wave parallelism actually in effect after Attach(): the pool size
  /// under kParallel, 1 otherwise.
  int executor_parallelism() const {
    return pool_ != nullptr ? pool_->parallelism() : 1;
  }

  /// The pool parallel waves run on (null when the resolved executor is
  /// serial). All networks created by one engine share a single instance —
  /// see set_thread_pool. Exposed for diagnostics/tests.
  const ThreadPool* thread_pool() const { return pool_.get(); }

  /// Payload size at or below which between-wave consolidation takes the
  /// pairwise fast path instead of sorting (see Consolidate). Purely a
  /// performance knob — results are identical for any value.
  void set_consolidation_cutoff(size_t cutoff) {
    consolidation_cutoff_ = cutoff;
  }
  size_t consolidation_cutoff() const { return consolidation_cutoff_; }

  /// Minimum total queued entries a wave must carry before it is handed to
  /// the worker pool; smaller waves run inline on the draining thread (see
  /// NetworkOptions::parallel_min_wave_entries). Results are bit-identical
  /// either way — the barrier merge runs in ready order regardless.
  void set_parallel_min_wave_entries(size_t entries) {
    parallel_min_wave_entries_ = entries;
  }
  size_t parallel_min_wave_entries() const {
    return parallel_min_wave_entries_;
  }

  /// Lifetime count of waves actually dispatched to the worker pool —
  /// waves the gate kept inline (and every serial-executor wave) do not
  /// count. Observability for the gate and its tests. Relaxed atomic:
  /// readable from any thread mid-ingest.
  int64_t parallel_waves_dispatched() const {
    return parallel_waves_dispatched_.load(std::memory_order_relaxed);
  }

  /// Minimum entries a single node must have queued on its input ports
  /// before its delivery is split into key-partitioned morsels within the
  /// wave. 0 forces the morsel path for every eligible node (tests/CI).
  /// The same threshold gates parallel source translation (by graph-change
  /// count). Results are bit-identical either way — see
  /// NetworkOptions::morsel_min_node_entries.
  void set_morsel_min_node_entries(size_t entries) {
    morsel_min_node_entries_ = entries;
  }
  size_t morsel_min_node_entries() const { return morsel_min_node_entries_; }

  /// Caps the number of partitions a morsel dispatch splits a node into.
  /// 0 = auto (the pool's parallelism, capped at kMorselShards); 1 turns
  /// morsel delivery and parallel translation off entirely. Must be set
  /// before Attach() (resolved there, like the pool itself).
  void set_morsel_partitions(uint32_t partitions) {
    morsel_partitions_ = partitions;
  }
  uint32_t morsel_partitions() const { return morsel_partitions_; }

  /// The partition count morsel dispatches actually use after Attach()
  /// (1 = morsel execution disabled: serial executor, or capped away).
  uint32_t morsel_partitions_resolved() const {
    return morsel_partitions_resolved_;
  }

  /// Lifetime count of waves in which at least one node's delivery ran
  /// partitioned morsel-style. Relaxed atomic: readable mid-ingest.
  int64_t morsel_waves_dispatched() const {
    return morsel_waves_dispatched_.load(std::memory_order_relaxed);
  }

  /// Turns per-node/per-drain propagation profiling on or off (see
  /// NetworkOptions::profiling). May be flipped at any time between drains
  /// on the writer thread; nodes added later inherit the current setting.
  /// Off (the default) keeps the hot paths free of clock reads — the <2%
  /// overhead contract bench_e9_observability enforces.
  void set_profiling(bool on);
  bool profiling() const { return profiling_; }

  /// Lends the registry drain/serving histograms are recorded into while
  /// profiling is on (owned by the ViewCatalog; one per engine). Must
  /// outlive the network. Null = profiling records node profiles and trace
  /// events only.
  void set_metrics(MetricsRegistry* metrics);

  /// Capacity (in events) of the profiling trace buffer; applies to the
  /// buffer created at the next set_profiling(true). See
  /// NetworkOptions::trace_capacity.
  void set_trace_capacity(size_t capacity) { trace_capacity_ = capacity; }

  /// The trace events recorded so far (null until profiling is first
  /// enabled). Writer-thread-only, like every diagnostics accessor.
  const TraceBuffer* trace() const { return trace_.get(); }

  /// Lifetime count of fresh epoch objects productions actually published
  /// (commits where some view's results changed re-publish that view; an
  /// unchanged view keeps its previous epoch object and does not count).
  /// Relaxed atomic: readable from any thread mid-ingest.
  int64_t epochs_published() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }

  /// One row of NodeMetricsSnapshot(): a node's identity plus its lifetime
  /// emission counter and (if profiling ever ran) its NodeProfile.
  struct NodeMetrics {
    std::string name;          // DebugString
    const char* kind = "";     // KindName
    int level = -1;            // batched topological level, -1 if none
    int64_t emitted_entries = 0;
    int64_t activations = 0;
    int64_t input_entries = 0;
    int64_t output_entries = 0;
    int64_t busy_ns = 0;
    int64_t last_ns = 0;
    size_t memory_bytes = 0;
  };

  /// Per-node stats in node (bottom-up construction) order. Writer-thread-
  /// only: ApproxMemoryBytes/DebugString read node memories that a
  /// concurrent drain mutates.
  std::vector<NodeMetrics> NodeMetricsSnapshot() const;

  /// How many *previous* published epochs each production keeps alive in
  /// addition to its current one (see ProductionNode::PublishSnapshot).
  /// 0 (the default) retires an epoch as soon as the last reader unpins
  /// it. Purely a retention knob — readers always pin the latest commit.
  void set_epoch_retention(size_t epochs) { epoch_retention_ = epochs; }
  size_t epoch_retention() const { return epoch_retention_; }

  /// The number of commit points this network has published: every drain /
  /// eager cascade / prime bumps it once and re-publishes each production
  /// whose results changed. Written on the writer thread only; relaxed
  /// atomic, so diagnostics may read it from any thread — readers still
  /// learn their epoch from the PublishedEpoch objects they pin, not from
  /// here.
  uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_relaxed);
  }

  /// Starts maintaining against `graph` (see class comment). Requires a
  /// production node. Attaching while already attached is a no-op, as is
  /// attaching to any graph other than the one the network was first
  /// primed over (asserted in debug builds).
  void Attach(PropertyGraph* graph);
  void Detach();

  bool attached() const { return attached_graph_ != nullptr; }

  /// One reused → fresh subscription created by a catalog registration:
  /// `from` is a live node another view already primed, `to`/`port` the
  /// newly attached consumer that must receive `from`'s materialized
  /// output to reach steady state.
  struct ReplayEdge {
    ReteNode* from = nullptr;
    ReteNode* to = nullptr;
    int port = 0;
  };

  /// Accounting of one incremental prime: how many tuples reached the new
  /// sub-network by memory replay vs. by re-reading the graph. With full
  /// structural sharing, `graph_primed_entries` is 0 and
  /// `replayed_entries` is proportional to the new view's input/result
  /// sizes — never to the catalog size.
  struct PrimeStats {
    int64_t replayed_entries = 0;     // tuples delivered along replay edges
    int64_t graph_primed_entries = 0;  // tuples emitted by fresh sources
    size_t replay_edges = 0;           // reused → fresh subscriptions
    size_t primed_sources = 0;         // fresh graph-boundary nodes
    size_t fresh_nodes = 0;            // nodes built for this registration
  };

  /// Incremental priming — primes just-built nodes while the network stays
  /// attached and maintaining. `fresh_nodes` (bottom-up order; the nodes a
  /// registration added after the last Attach) emit their structural
  /// initial output, fresh *source* nodes assert the current graph
  /// content, and every ReplayEdge delivers the reused upstream node's
  /// materialized memory (ReplayOutput, reconstructed through stateless
  /// transforms) into only the newly attached consumer. Deliveries are
  /// scoped: fresh nodes only feed fresh nodes, reused nodes emit
  /// nothing, so sibling views' memories, pending deltas and listeners
  /// are untouched (listener fan-out is suppressed for the duration, as
  /// during Attach priming). Call between graph deltas (the network must
  /// be quiescent), after wiring the new nodes; under kBatched the
  /// scheduler is rebuilt to cover them.
  ///
  /// `replay_scope` bounds the reverse-edge walk that reconstructs
  /// stateless replay sources: pass the registering view's full node set
  /// (support ∪ fresh) — it is closed under upstream edges, so the
  /// reconstruction never needs wiring outside it and the rest of the
  /// catalog is not even visited.
  PrimeStats PrimeNewNodes(const std::vector<ReteNode*>& fresh_nodes,
                           const std::vector<ReplayEdge>& replay_edges,
                           const std::vector<ReteNode*>& replay_scope);

  /// `node`'s current output as an insert-only delta: ReplayOutput for
  /// stateful nodes, reconstructed via the node's inputs for stateless
  /// transforms. Exposed for tests/diagnostics; PrimeNewNodes memoizes
  /// across replay edges instead of calling this per edge.
  Delta ReplayOutputOf(ReteNode* node);

  /// Destroys `victims` — nodes no remaining view references (the caller,
  /// normally the ViewCatalog, owns that refcount). Victims are unsubscribed
  /// from every surviving node's output list, dropped from the source /
  /// production / scheduler bookkeeping, and freed. Surviving nodes keep
  /// their memories untouched, so detaching one view never disturbs a
  /// sharing sibling; if the network is attached under batched propagation
  /// the topological levels are recomputed.
  void RemoveNodes(const std::vector<ReteNode*>& victims);

  // GraphListener:
  void OnGraphDelta(const GraphDelta& delta) override;

  /// Topological level assigned to `node` by the batched scheduler
  /// (sources are level 0); -1 before the first batched Attach or for
  /// foreign nodes. Exposed for tests and diagnostics.
  int node_level(const ReteNode* node) const;

  /// Sum of all node memories.
  size_t ApproxMemoryBytes() const;

  /// Per-node memory/diagnostic summary, one node per line.
  std::string DebugString() const;

  size_t node_count() const { return nodes_.size(); }
  int64_t deltas_processed() const {
    return deltas_processed_.load(std::memory_order_relaxed);
  }
  int64_t changes_processed() const {
    return changes_processed_.load(std::memory_order_relaxed);
  }

  /// Lifetime sum of delta entries emitted by all nodes — the total
  /// propagation volume through this network (the FGN experiments' metric).
  /// Under kBatched, emissions are counted after consolidation, so
  /// cancelled inverse pairs do not contribute. Safe from any thread
  /// (relaxed per-node atomics) as long as no registration mutates the
  /// node set concurrently.
  ///
  /// Deprecated surface: prefer QueryEngine::MetricsSnapshot(), which
  /// folds this into EngineMetricsSnapshot. Kept as a thin wrapper.
  int64_t TotalEmittedEntries() const;

  /// Lifetime sum of delta entries emitted by the graph-boundary source
  /// nodes only — the graph-read volume. The catalog differences this
  /// around priming to report graph-primed tuples (PrimeStats).
  ///
  /// Deprecated surface: prefer QueryEngine::MetricsSnapshot(), which
  /// folds this into EngineMetricsSnapshot. Kept as a thin wrapper.
  int64_t SourceEmittedEntries() const;

  size_t source_count() const { return sources_.size(); }

 private:
  /// One input port's queued delta. `clean` means the content is a single
  /// already-consolidated upstream flush (the common fan-in-tree case), so
  /// delivery can skip re-consolidating it.
  struct PendingDelta {
    Delta delta;
    bool clean = false;
    /// Morsel scratch: the owning partition of each entry of `delta`,
    /// computed (chunk-parallel) right before a partitioned dispatch.
    /// Valid only within that wave; capacity is recycled across waves.
    std::vector<uint32_t> morsel_map;
  };

  /// Per-node scheduler state: topological level, the deltas queued on each
  /// input port since the node last ran, and the emissions it buffered
  /// while running (flushed downstream as one consolidated delta). The
  /// pending list is kept sorted by port (delivery order 0, 1, ...); it is
  /// a flat vector because real nodes have at most two ports.
  ///
  /// `out` doubles as the node's staging buffer under parallel execution:
  /// one node is processed by exactly one worker per wave, so its slot is
  /// written by a single thread, and the wave barrier merges all slots
  /// downstream in ready order.
  struct NodeState {
    int level = 0;
    bool queued = false;
    /// True for nodes this network owns (emit sink installed). Foreign
    /// subscribers cascade eagerly into arbitrary downstream nodes when
    /// run, so they are kept out of the parallel phase and processed at
    /// the barrier instead.
    bool owned = false;
    std::vector<std::pair<int, PendingDelta>> pending;
    Delta out;
    /// Per-partition staging slots for morsel delivery: partition p of a
    /// partitioned dispatch appends only to morsel_out[p] (single writer
    /// per slot), and the barrier concatenates the slots into `out` in
    /// partition order before consolidating. Sized lazily on the node's
    /// first morsel wave; buffers are recycled across waves.
    std::vector<Delta> morsel_out;
    /// Profiling scratch, written by whichever thread ran DeliverPending
    /// for the node this wave (single writer; the pool join is the
    /// barrier) and turned into trace events at the serial merge phase.
    int64_t prof_start_ns = 0;
    int64_t prof_dur_ns = 0;
    int64_t prof_in_entries = 0;
    /// Per-partition profiling scratch of a morsel wave (one writer per
    /// slot), folded into the node profile / trace at the barrier.
    std::vector<int64_t> morsel_prof_start_ns;
    std::vector<int64_t> morsel_prof_dur_ns;
  };

  // EmitSink: buffers `from`'s emission for the current wave.
  void OnEmit(ReteNode* from, Delta delta) override;

  /// The pending slot for `port` of `state`, inserted in port order.
  static PendingDelta& PendingFor(NodeState& state, int port);

  /// Computes topological levels and allocates scheduler state. Re-run on
  /// every Attach so nodes/edges wired between attachments are covered.
  void PrepareScheduler();

  void EnqueueReady(ReteNode* node, NodeState& state);

  /// Delivers `node`'s queued per-port deltas (consolidating each unless
  /// already clean) and consolidates whatever the node emitted in response
  /// into `state.out`. This is the per-node work a wave distributes across
  /// workers; it touches only the node's own memories and scheduler slot.
  void DeliverPending(ReteNode* node, NodeState& state);

  /// Accounts `node`'s consolidated output and appends it to each
  /// downstream (node, port) pending queue. Always runs on the draining
  /// thread, in ready order — the deterministic merge point of a wave.
  void FlushNode(ReteNode* node, NodeState& state);

  /// One ready node of the wave being drained, with its scheduler state
  /// looked up exactly once per wave (the states_.at hash probe used to
  /// run several times per node per wave).
  struct WaveItem {
    ReteNode* node = nullptr;
    NodeState* state = nullptr;
    size_t entries = 0;   // total entries queued on the node's input ports
    bool morsel = false;  // this wave partitions the node's delivery
    MorselKind kind = MorselKind::kNone;
  };

  /// One unit of phase-1 parallel work: a whole node (partition ==
  /// kDeliverWhole — the classic node-parallel wave) or one partition of a
  /// morsel-split node.
  struct MorselTask {
    WaveItem* item = nullptr;
    uint32_t partition = 0;
  };
  static constexpr uint32_t kDeliverWhole = UINT32_MAX;

  /// One contiguous range of one pending delta whose partition map one
  /// worker computes (MorselPartitionMap is pure, so ranges of the same
  /// delta proceed concurrently).
  struct MapChunk {
    const ReteNode* node = nullptr;
    const Delta* delta = nullptr;
    uint32_t* map = nullptr;
    int port = 0;
    size_t begin = 0;
    size_t end = 0;
  };

  /// Delivers one partition of `item`'s queued deltas into its
  /// state->morsel_out[partition] slot. Keyed nodes consult the pending
  /// morsel_map (disjoint key ownership ⇒ disjoint memory shards);
  /// chunked nodes process their contiguous range. Never Emits.
  void DeliverMorselPartition(WaveItem& item, uint32_t partition);

  /// Barrier-side merge of a morsel-split node: concatenates the
  /// per-partition slots into state->out in partition order, consolidates
  /// (canonical order ⇒ bit-identical to a serial delivery), clears the
  /// pending queues and folds the per-partition profiles into the node
  /// profile. Runs on the draining thread.
  void MergeMorsel(WaveItem& item);

  /// Drains all queued work level by level until the network is quiescent.
  /// Under kParallel each level's owned nodes are processed concurrently
  /// (phase 1) before the barrier merge (phase 2); results are
  /// bit-identical to serial draining.
  void DrainWaves();

  /// Commits the current state for concurrent readers: bumps
  /// commit_epoch_ and has every production publish an immutable snapshot
  /// (ProductionNode::PublishSnapshot — a copy only where results
  /// changed). Runs on the writer thread at the end of every drain and of
  /// every eager cascade/prime, i.e. exactly when the network is
  /// quiescent and the bags are consistent.
  void PublishEpochs();

  /// (upstream, port) inputs per node, derived from the output wiring —
  /// the reverse edges ReplayOutput reconstruction walks for stateless
  /// nodes. Built on demand (only when a replay chain crosses one) and
  /// only over `scope` (a view's support set is upstream-closed, so the
  /// walk stays inside it — O(view), not O(catalog)).
  using InputsMap =
      std::unordered_map<const ReteNode*,
                         std::vector<std::pair<ReteNode*, int>>>;
  InputsMap BuildInputsMap(const std::vector<ReteNode*>& scope) const;

  /// Memoized current output of `node` (see ReplayOutputOf). `inputs` is
  /// filled lazily from `scope` on the first stateless node encountered.
  const Delta& CurrentOutputOf(ReteNode* node,
                               const std::vector<ReteNode*>& scope,
                               InputsMap& inputs, bool& inputs_built,
                               std::unordered_map<ReteNode*, Delta>& memo);

  std::vector<std::unique_ptr<ReteNode>> nodes_;
  std::vector<GraphSourceNode*> sources_;
  ProductionNode* production_ = nullptr;
  /// Every view root, in registration order (catalog networks have many).
  std::vector<ProductionNode*> productions_;
  PropertyGraph* attached_graph_ = nullptr;
  /// The graph this network was first primed over; re-attachment is only
  /// valid to the same graph (source nodes capture it at construction).
  PropertyGraph* primed_graph_ = nullptr;
  /// Lifetime counters. Written on the writer thread only, but relaxed
  /// atomics so serving threads may read them mid-ingest without racing.
  std::atomic<int64_t> deltas_processed_{0};
  std::atomic<int64_t> changes_processed_{0};

  PropagationStrategy propagation_ = PropagationStrategy::kBatched;
  ExecutorKind executor_ = ExecutorKind::kSerial;
  int executor_threads_ = 0;  // 0 = hardware concurrency
  /// The pool parallel waves run on: `shared_pool_` when the catalog lent
  /// one, else lazily built at Attach(); workers persist across waves and
  /// attachments. Null whenever the resolved executor is serial.
  std::shared_ptr<ThreadPool> pool_;
  /// Engine-wide pool injected via set_thread_pool (may be null).
  std::shared_ptr<ThreadPool> shared_pool_;
  size_t consolidation_cutoff_ = kDefaultConsolidationCutoff;
  /// See set_epoch_retention / PublishEpochs.
  size_t epoch_retention_ = 0;
  std::atomic<uint64_t> commit_epoch_{0};
  std::atomic<int64_t> epochs_published_{0};
  /// See set_parallel_min_wave_entries; the builder/catalog overwrite this
  /// from NetworkOptions, so the default only covers hand-wired networks.
  size_t parallel_min_wave_entries_ = 8;
  std::atomic<int64_t> parallel_waves_dispatched_{0};
  /// See set_profiling. Read on the hot paths as a plain bool: flipped
  /// only on the writer thread between drains.
  bool profiling_ = false;
  /// See set_metrics: the engine's registry plus the histograms this
  /// network records into (resolved once so drains never lock).
  MetricsRegistry* metrics_ = nullptr;
  LatencyHistogram* h_drain_ns_ = nullptr;
  LatencyHistogram* h_translate_ns_ = nullptr;
  LatencyHistogram* h_wave_ns_ = nullptr;
  LatencyHistogram* h_barrier_ns_ = nullptr;
  LatencyHistogram* h_drain_entries_ = nullptr;
  size_t trace_capacity_ = 1 << 16;
  /// Created on the first set_profiling(true); see trace().
  std::unique_ptr<TraceBuffer> trace_;
  /// See set_morsel_min_node_entries / set_morsel_partitions; the
  /// builder/catalog overwrite these from NetworkOptions.
  size_t morsel_min_node_entries_ = 1024;
  uint32_t morsel_partitions_ = 0;  // 0 = auto; resolved at Attach
  uint32_t morsel_partitions_resolved_ = 1;
  std::atomic<int64_t> morsel_waves_dispatched_{0};
  LatencyHistogram* h_wave_imbalance_ = nullptr;
  /// Scratch for the wave loop (members so steady-state waves don't
  /// allocate): the level being drained, the phase-1 task list, and the
  /// partition-map chunks of the wave's morsel nodes.
  std::vector<WaveItem> wave_items_;
  std::vector<MorselTask> morsel_tasks_;
  std::vector<MapChunk> map_chunks_;
  /// One (partitionable source, partition) unit of parallel graph-delta
  /// translation, with its per-task output buffer (merged source-major,
  /// partition-minor — deterministic, then canonicalized by the level-0
  /// consolidation).
  struct TranslateTask {
    GraphSourceNode* source = nullptr;
    ReteNode* node = nullptr;
    uint32_t partition = 0;
  };
  std::vector<TranslateTask> translate_tasks_;
  std::vector<Delta> translate_out_;
  /// True while a graph delta is being translated into source buffers
  /// (drain deferred until translation finishes) / while DrainWaves runs.
  /// An OnEmit with neither set is an externally fed node (chained views)
  /// and triggers an immediate drain.
  bool buffering_ = false;
  bool draining_ = false;
  std::unordered_map<const ReteNode*, NodeState> states_;
  std::vector<std::vector<ReteNode*>> ready_by_level_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_NETWORK_H_
