#include "catalog/view_catalog.h"

#include <algorithm>
#include <sstream>

#include "support/string_util.h"

namespace pgivm {

std::string CatalogStats::ToString() const {
  std::ostringstream os;
  os << "views=" << views << " nodes=" << total_nodes
     << " shared=" << shared_nodes << " (" << static_cast<int>(
            SharingRatio() * 100.0 + 0.5)
     << "%) registry hits=" << registry_hits << " misses=" << registry_misses
     << " mem=" << memory_bytes << "B";
  return os.str();
}

std::shared_ptr<ViewCatalog> ViewCatalog::Create(
    PropertyGraph* graph, NetworkOptions network_options,
    CatalogOptions options) {
  // PGIVM_THREADS wins over programmatic executor configuration for every
  // network this catalog creates (shared or per-view).
  return std::shared_ptr<ViewCatalog>(new ViewCatalog(
      graph, ApplyEnvExecutorOverride(network_options), options));
}

Result<std::shared_ptr<View>> ViewCatalog::Install(std::string query,
                                                   OpPtr gra, OpPtr fra,
                                                   int64_t skip,
                                                   int64_t limit) {
  auto view = std::shared_ptr<View>(new View());
  view->query_ = std::move(query);
  view->gra_ = std::move(gra);
  view->fra_ = std::move(fra);
  for (const auto& [name, expr] : view->fra_->projections) {
    view->columns_.push_back(name);
    (void)expr;
  }
  view->skip_ = skip;
  view->limit_ = limit;

  if (options_.share_operator_state) {
    if (network_ == nullptr) {
      network_ = std::make_unique<ReteNetwork>();
      network_->set_propagation(network_options_.propagation);
      network_->set_executor(network_options_.executor,
                             network_options_.num_threads);
      network_->set_consolidation_cutoff(
          network_options_.consolidation_cutoff);
    }
    Result<BuiltView> built = BuildViewInto(network_.get(), view->fra_,
                                            graph_, network_options_,
                                            &registry_);
    if (!built.ok()) return built.status();

    Entry entry;
    entry.view = view.get();
    entry.network = network_.get();
    entry.production = built->production;
    entry.nodes = std::move(built->nodes);
    for (ReteNode* node : entry.nodes) ++refcounts_[node];
    entries_.push_back(std::move(entry));

    view->catalog_ = shared_from_this();
    view->network_ = network_.get();
    view->production_ = entries_.back().production;

    // Prime the new sub-network with the current graph content. A reused
    // interior node cannot replay its memories into a fresh consumer yet
    // (ROADMAP follow-up: incremental priming), so the whole network
    // re-primes: every memory is rebuilt to the identical state and
    // listener fan-out stays silent throughout.
    network_->Detach();
    network_->Attach(graph_);
  } else {
    PGIVM_ASSIGN_OR_RETURN(
        std::unique_ptr<ReteNetwork> network,
        BuildNetwork(view->fra_, graph_, network_options_));

    Entry entry;
    entry.view = view.get();
    entry.network = network.get();
    entry.production = network->production();
    entries_.push_back(std::move(entry));

    view->catalog_ = shared_from_this();
    view->network_ = network.get();
    view->production_ = network->production();
    view->owned_network_ = std::move(network);
    view->owned_network_->Attach(graph_);
  }
  return view;
}

void ViewCatalog::Deregister(View* view) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [view](const Entry& entry) {
                           return entry.view == view;
                         });
  if (it == entries_.end()) return;
  Entry entry = std::move(*it);
  entries_.erase(it);
  if (!options_.share_operator_state) {
    // The view owns its private network; it detaches in its destructor.
    return;
  }

  std::vector<ReteNode*> victims;
  for (ReteNode* node : entry.nodes) {
    auto rc = refcounts_.find(node);
    if (rc == refcounts_.end()) continue;
    if (--rc->second == 0) {
      victims.push_back(node);
      refcounts_.erase(rc);
    }
  }
  registry_.RemoveNodes(victims);
  // In shared mode every entry lives in network_, so survivors exist iff
  // any entry remains.
  if (!entries_.empty()) {
    network_->RemoveNodes(victims);
  } else {
    // Last view gone: drop the whole shared network. Registry entries are
    // all rooted at victims by now; Clear() keeps the lifetime hit/miss
    // counters.
    network_.reset();
    registry_.Clear();
    refcounts_.clear();
  }
}

CatalogStats ViewCatalog::Stats() const {
  CatalogStats stats;
  stats.views = entries_.size();
  stats.registry_hits = registry_.hits();
  stats.registry_misses = registry_.misses();
  if (options_.share_operator_state) {
    if (network_ != nullptr) {
      stats.total_nodes = network_->node_count();
      stats.memory_bytes = network_->ApproxMemoryBytes();
    }
    for (const auto& [node, refcount] : refcounts_) {
      (void)node;
      if (refcount >= 2) ++stats.shared_nodes;
    }
  } else {
    for (const Entry& entry : entries_) {
      stats.total_nodes += entry.network->node_count();
      stats.memory_bytes += entry.network->ApproxMemoryBytes();
    }
  }
  return stats;
}

size_t ViewCatalog::ViewMemoryBytes(const View* view) const {
  for (const Entry& entry : entries_) {
    if (entry.view != view) continue;
    if (!options_.share_operator_state) {
      return entry.network->ApproxMemoryBytes();
    }
    size_t bytes = 0;
    for (const ReteNode* node : entry.nodes) {
      bytes += node->ApproxMemoryBytes();
    }
    return bytes;
  }
  return 0;
}

size_t ViewCatalog::MarginalMemoryBytes(const View* view) const {
  for (const Entry& entry : entries_) {
    if (entry.view != view) continue;
    if (!options_.share_operator_state) {
      return entry.network->ApproxMemoryBytes();
    }
    size_t bytes = 0;
    for (ReteNode* node : entry.nodes) {
      auto rc = refcounts_.find(node);
      if (rc != refcounts_.end() && rc->second == 1) {
        bytes += node->ApproxMemoryBytes();
      }
    }
    return bytes;
  }
  return 0;
}

std::string ViewCatalog::DebugString() const {
  std::ostringstream os;
  os << Stats().ToString() << "\n";
  for (const Entry& entry : entries_) {
    os << "  view[" << entry.view->query() << "] nodes="
       << entry.nodes.size() << " mem=" << ViewMemoryBytes(entry.view)
       << "B marginal=" << MarginalMemoryBytes(entry.view) << "B\n";
  }
  return os.str();
}

}  // namespace pgivm
