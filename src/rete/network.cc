#include "rete/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

#include "rete/sharded_map.h"
#include "support/string_util.h"

namespace pgivm {

const char* PropagationStrategyName(PropagationStrategy strategy) {
  switch (strategy) {
    case PropagationStrategy::kEager:
      return "eager";
    case PropagationStrategy::kBatched:
      return "batched";
  }
  return "?";
}

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kParallel:
      return "parallel";
  }
  return "?";
}

ReteNetwork::~ReteNetwork() { Detach(); }

void ReteNetwork::SetProduction(ProductionNode* production) {
  production_ = production;
  if (production != nullptr &&
      std::find(productions_.begin(), productions_.end(), production) ==
          productions_.end()) {
    productions_.push_back(production);
  }
}

void ReteNetwork::set_propagation(PropagationStrategy strategy) {
  assert(attached_graph_ == nullptr &&
         "change the propagation strategy before Attach");
  if (attached_graph_ != nullptr) return;  // sinks are installed per Attach
  propagation_ = strategy;
}

void ReteNetwork::set_executor(ExecutorKind kind, int num_threads) {
  assert(attached_graph_ == nullptr && "change the executor before Attach");
  if (attached_graph_ != nullptr) return;  // the pool is built per Attach
  executor_ = kind;
  executor_threads_ = num_threads;
}

void ReteNetwork::set_thread_pool(std::shared_ptr<ThreadPool> pool) {
  assert(attached_graph_ == nullptr && "lend the pool before Attach");
  if (attached_graph_ != nullptr) return;
  shared_pool_ = std::move(pool);
}

void ReteNetwork::set_profiling(bool on) {
  profiling_ = on;
  // Nodes carry their own copy of the flag for the eager fan-out path;
  // nodes added later inherit it at Attach/PrimeNewNodes.
  for (const auto& node : nodes_) node->set_profiling(on);
  if (on && trace_ == nullptr) {
    trace_ = std::make_unique<TraceBuffer>(trace_capacity_);
  }
}

void ReteNetwork::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    h_drain_ns_ = nullptr;
    h_translate_ns_ = nullptr;
    h_wave_ns_ = nullptr;
    h_barrier_ns_ = nullptr;
    h_drain_entries_ = nullptr;
    h_wave_imbalance_ = nullptr;
    return;
  }
  // Resolved once so the profiling paths never take the registry mutex.
  h_drain_ns_ = &metrics->GetHistogram("propagation.drain_ns");
  h_translate_ns_ = &metrics->GetHistogram("propagation.translate_ns");
  h_wave_ns_ = &metrics->GetHistogram("propagation.wave_ns");
  h_barrier_ns_ = &metrics->GetHistogram("propagation.barrier_ns");
  h_drain_entries_ = &metrics->GetHistogram("propagation.drain_entries");
  // Percent of a wave's queued entries held by its single hottest node —
  // the skew signal that motivates morsel splitting (100 = one node owns
  // the whole wave).
  h_wave_imbalance_ = &metrics->GetHistogram("propagation.wave_imbalance");
}

void ReteNetwork::Attach(PropertyGraph* graph) {
  assert(graph != nullptr);
  if (graph == nullptr) return;
  assert(production_ != nullptr && "Attach requires a production node");
  if (production_ == nullptr) return;
  if (attached_graph_ == graph) return;  // double-attach: no-op
  // The source nodes read the graph they were constructed over; attaching
  // the network to any other graph would prime from one store while
  // subscribing to another. Rejected before touching the current
  // attachment, so a bad call leaves the network in its previous state.
  assert((primed_graph_ == nullptr || primed_graph_ == graph) &&
         "a network can only be (re-)attached to the graph it was built "
         "over");
  if (primed_graph_ != nullptr && primed_graph_ != graph) return;
  if (attached_graph_ != nullptr) Detach();

  // A re-attach re-primes from scratch: wipe whatever the previous
  // attachment left in the node memories.
  if (primed_graph_ != nullptr) {
    for (const auto& node : nodes_) node->Reset();
  }
  primed_graph_ = graph;

  const bool batched = propagation_ == PropagationStrategy::kBatched;
  // The executor only affects batched wave scheduling; the eager cascade is
  // a depth-first recursion with no parallel unit. A resolved parallelism
  // of 1 keeps the serial fast path (no pool, no dispatch).
  if (batched && executor_ == ExecutorKind::kParallel) {
    int threads = ThreadPool::ResolveThreadCount(executor_threads_);
    if (threads > 1) {
      if (shared_pool_ != nullptr) {
        // The engine-wide pool (one per catalog, shared by every network
        // of the engine — sibling networks never drain concurrently, so
        // one pool serves them all).
        assert(shared_pool_->parallelism() == threads &&
               "lent pool sized differently from the resolved executor");
        pool_ = shared_pool_;
      } else if (pool_ == nullptr || pool_->parallelism() != threads) {
        pool_ = std::make_shared<ThreadPool>(threads);
      }
    } else {
      pool_.reset();
    }
  } else {
    pool_.reset();
  }
  // Morsel partition count: the explicit cap, else the pool's parallelism,
  // never more than the shard count (partition p owns shards s with
  // s % partitions == p, so more partitions than shards would leave some
  // idle). No pool ⇒ 1 ⇒ morsel execution disabled.
  if (pool_ != nullptr) {
    uint32_t parts = morsel_partitions_ != 0
                         ? morsel_partitions_
                         : static_cast<uint32_t>(pool_->parallelism());
    morsel_partitions_resolved_ = std::min(parts, kMorselShards);
  } else {
    morsel_partitions_resolved_ = 1;
  }
  if (batched) {
    PrepareScheduler();
  } else {
    // Drop any scheduler state a previous batched attachment left behind,
    // so node_level()/DebugString() don't report defunct levels.
    states_.clear();
    ready_by_level_.clear();
  }
  for (const auto& node : nodes_) {
    node->set_emit_sink(batched ? this : nullptr);
    node->set_profiling(profiling_);
  }
  // Under parallel waves, listener callbacks must not run on pool workers
  // (user code; two productions in one wave would fire concurrently) —
  // productions buffer them and the barrier flushes serially, in ready
  // order, preserving the serial executor's threading contract.
  for (ProductionNode* production : productions_) {
    production->set_defer_notifications(pool_ != nullptr);
  }

  attached_graph_ = graph;
  // Priming replays the whole graph content; it rebuilds every production
  // to its correct rows but is not an observable *change*, so listener
  // fan-out is silenced for the duration (results and chained emissions
  // are unaffected). This matters for catalog networks running with
  // incremental_priming disabled, where registering one more view
  // re-primes the views already being observed.
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(false);
  }
  buffering_ = true;
  for (const auto& node : nodes_) node->EmitInitial();
  for (GraphSourceNode* source : sources_) source->EmitInitialFromGraph();
  buffering_ = false;
  if (batched) {
    DrainWaves();  // publishes the primed state as a commit epoch
  } else {
    PublishEpochs();
  }
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(true);
  }
  graph->AddListener(this);
}

void ReteNetwork::Detach() {
  if (attached_graph_ == nullptr) return;
  attached_graph_->RemoveListener(this);
  attached_graph_ = nullptr;
}

void ReteNetwork::RemoveNodes(const std::vector<ReteNode*>& victims) {
  if (victims.empty()) return;
  assert(!draining_ && "cannot remove nodes mid-wave");
  std::unordered_set<const ReteNode*> gone(victims.begin(), victims.end());

  // Surviving upstream nodes must stop fanning out into freed memory.
  for (const auto& node : nodes_) {
    if (gone.count(node.get()) == 0) node->RemoveOutputsTo(gone);
  }

  auto is_gone = [&gone](const auto* ptr) { return gone.count(ptr) > 0; };
  sources_.erase(
      std::remove_if(sources_.begin(), sources_.end(),
                     [&](GraphSourceNode* source) {
                       // Sources are also ReteNodes; match via dynamic
                       // identity by scanning the victim set of node
                       // pointers (every registered source was Add()ed).
                       return gone.count(dynamic_cast<ReteNode*>(source)) > 0;
                     }),
      sources_.end());
  productions_.erase(std::remove_if(productions_.begin(), productions_.end(),
                                    [&](ProductionNode* p) {
                                      return is_gone(p);
                                    }),
                     productions_.end());
  if (production_ != nullptr && is_gone(production_)) {
    production_ = productions_.empty() ? nullptr : productions_.back();
  }
  for (const ReteNode* victim : gone) states_.erase(victim);
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [&](const std::unique_ptr<ReteNode>& node) {
                                return is_gone(node.get());
                              }),
               nodes_.end());

  // Levels / scheduler state reference the old shape; recompute while the
  // network keeps maintaining (survivor memories are untouched).
  if (attached_graph_ != nullptr &&
      propagation_ == PropagationStrategy::kBatched) {
    PrepareScheduler();
  }
}

void ReteNetwork::OnGraphDelta(const GraphDelta& delta) {
  deltas_processed_.fetch_add(1, std::memory_order_relaxed);
  changes_processed_.fetch_add(static_cast<int64_t>(delta.changes.size()),
                               std::memory_order_relaxed);
  const bool prof = profiling_;
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  // Eager: each HandleChange cascades depth-first on its own. Batched: the
  // emit sinks buffer the sources' relational deltas while the *entire*
  // graph delta is translated, and DrainWaves then moves them through the
  // network level by level, one consolidated delta per (node, port).
  buffering_ = true;
  const uint32_t parts = morsel_partitions_resolved_;
  // Large batches translate data-parallel: one task per (partitionable
  // source, partition), each handling only the graph entities its
  // partition owns — disjoint shards of the source's asserted state, so
  // no synchronization — buffering into its own Delta. The merge below
  // appends the buffers in task order (source-major, partition-minor:
  // deterministic), and the level-0 consolidation canonicalizes entry
  // order before any consumer sees the delta, so results are bit-identical
  // to the serial loop. Gated by the same threshold as morsel delivery
  // (0 forces; a handful of changes does not amortize a pool dispatch).
  const bool parallel_translate =
      pool_ != nullptr && parts >= 2 &&
      propagation_ == PropagationStrategy::kBatched &&
      (morsel_min_node_entries_ == 0 ||
       delta.changes.size() >= morsel_min_node_entries_);
  if (!parallel_translate) {
    for (const GraphChange& change : delta.changes) {
      for (GraphSourceNode* source : sources_) {
        source->HandleChange(change);
      }
    }
  } else {
    translate_tasks_.clear();
    std::vector<GraphSourceNode*> serial_sources;
    for (GraphSourceNode* source : sources_) {
      if (source->translation_partitionable()) {
        ReteNode* node = dynamic_cast<ReteNode*>(source);
        for (uint32_t p = 0; p < parts; ++p) {
          translate_tasks_.push_back({source, node, p});
        }
      } else {
        serial_sources.push_back(source);
      }
    }
    translate_out_.resize(translate_tasks_.size());
    for (Delta& out : translate_out_) out.clear();
    pool_->Run(translate_tasks_.size(), [this, &delta, parts](size_t i) {
      const TranslateTask& task = translate_tasks_[i];
      Delta& out = translate_out_[i];
      for (const GraphChange& change : delta.changes) {
        task.source->HandleChangePartition(change, task.partition, parts,
                                           out);
      }
    });
    for (size_t i = 0; i < translate_tasks_.size(); ++i) {
      Delta& out = translate_out_[i];
      if (out.empty()) continue;
      ReteNode* node = translate_tasks_[i].node;
      NodeState& state = states_.at(node);
      if (state.out.empty()) {
        // Swap, not move: the staging slot's previous buffer comes back
        // as this task's scratch, so steady-state batches recycle both.
        std::swap(state.out, out);
      } else {
        state.out.insert(state.out.end(), std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
        out.clear();
      }
      EnqueueReady(node, state);
    }
    // Sources with cross-entity translation state (Unit, path enumeration)
    // run the serial path on this thread, after the pool run — never
    // inside it (Run's caller participates as a worker, and HandleChange
    // emits through the buffering sink, which is not thread-safe).
    for (GraphSourceNode* source : serial_sources) {
      for (const GraphChange& change : delta.changes) {
        source->HandleChange(change);
      }
    }
  }
  buffering_ = false;
  if (prof) {
    // Under kBatched this span is pure source translation (delivery is
    // deferred to DrainWaves); under kEager the depth-first cascades run
    // inside HandleChange, so it covers the whole propagation.
    const int64_t end_ns = MonotonicNowNs();
    const bool eager = propagation_ == PropagationStrategy::kEager;
    if (h_translate_ns_ != nullptr && !eager) {
      h_translate_ns_->Record(end_ns - start_ns);
    }
    if (eager && h_drain_ns_ != nullptr) h_drain_ns_->Record(end_ns - start_ns);
    if (trace_ != nullptr) {
      TraceEvent event;
      event.name = eager ? "cascade" : "translate";
      event.start_ns = start_ns;
      event.dur_ns = end_ns - start_ns;
      event.args = StrCat("\"changes\":", delta.changes.size());
      trace_->Append(std::move(event));
    }
  }
  if (propagation_ == PropagationStrategy::kBatched) {
    DrainWaves();  // publishes the commit epoch at its end
  } else {
    PublishEpochs();  // eager cascade already ran to quiescence
  }
}

void ReteNetwork::OnEmit(ReteNode* from, Delta delta) {
  NodeState& state = states_.at(from);
  if (state.out.empty()) {
    state.out = std::move(delta);
  } else {
    state.out.insert(state.out.end(),
                     std::make_move_iterator(delta.begin()),
                     std::make_move_iterator(delta.end()));
  }
  EnqueueReady(from, state);
  // An emission outside this network's own translate/drain cycle means one
  // of our nodes was fed externally (chained views: another network
  // delivering into us). Drain immediately so chained results never go
  // stale waiting for our next graph delta.
  if (!buffering_ && !draining_) DrainWaves();
}

ReteNetwork::PendingDelta& ReteNetwork::PendingFor(NodeState& state,
                                                   int port) {
  auto it = state.pending.begin();
  while (it != state.pending.end() && it->first < port) ++it;
  if (it == state.pending.end() || it->first != port) {
    it = state.pending.emplace(it, port, PendingDelta{});
  }
  return it->second;
}

void ReteNetwork::PrepareScheduler() {
  states_.clear();
  states_.reserve(nodes_.size());
  // Every node reachable through the output wiring gets scheduler state —
  // including subscribers the network does not own (chained views, test
  // probes), discovered transitively: they have no sink installed, so what
  // they emit cascades eagerly, but the nodes *they* feed must still be
  // levelled above them or a wave could enqueue into an already-drained
  // level bucket.
  std::vector<ReteNode*> reachable;
  reachable.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    states_[node.get()].owned = true;
    reachable.push_back(node.get());
  }
  for (size_t i = 0; i < reachable.size(); ++i) {
    for (const auto& [down, port] : reachable[i]->outputs()) {
      (void)port;
      if (states_.emplace(down, NodeState{}).second) reachable.push_back(down);
    }
  }
  // Relax levels to a fixpoint: level(downstream) > level(upstream). Nodes
  // are added bottom-up so one pass normally suffices; the loop guards
  // against exotic wiring orders (and rejects cycles without hanging).
  int max_level = 0;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    assert(rounds <= reachable.size() + 1 && "cycle in the Rete network");
    if (rounds > reachable.size() + 1) break;  // cycle: fail bounded
    for (ReteNode* node : reachable) {
      int level = states_.at(node).level;
      for (const auto& [down, port] : node->outputs()) {
        (void)port;
        NodeState& dst = states_.at(down);
        if (dst.level < level + 1) {
          dst.level = level + 1;
          max_level = std::max(max_level, dst.level);
          changed = true;
        }
      }
    }
  }
  ready_by_level_.assign(static_cast<size_t>(max_level) + 1, {});
}

void ReteNetwork::EnqueueReady(ReteNode* node, NodeState& state) {
  if (state.queued) return;
  state.queued = true;
  ready_by_level_[static_cast<size_t>(state.level)].push_back(node);
}

void ReteNetwork::DeliverPending(ReteNode* node, NodeState& state) {
  // With profiling on, the node's own wall time and consolidated in/out
  // volumes are sampled right here — the single place every batched
  // delivery funnels through, whether it runs on the draining thread or on
  // one pool worker (single writer per node either way, so the NodeState
  // scratch fields need no synchronization; the pool join is the barrier).
  const bool prof = profiling_;
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  int64_t in_entries = 0;
  for (auto& [port, pending] : state.pending) {
    if (!pending.clean) Consolidate(pending.delta, consolidation_cutoff_);
    if (prof) in_entries += static_cast<int64_t>(pending.delta.size());
    if (!pending.delta.empty()) node->OnDelta(port, pending.delta);
    // Empty in place (not pending.clear()): the slots and their Delta
    // buffers survive, so steady-state waves do not re-allocate.
    pending.delta.clear();
    pending.clean = false;
  }
  // Consolidating the response here (rather than in FlushNode) puts the
  // sort inside the parallel phase when the wave runs on the pool.
  Consolidate(state.out, consolidation_cutoff_);
  if (prof) {
    const int64_t dur_ns = MonotonicNowNs() - start_ns;
    state.prof_start_ns = start_ns;
    state.prof_dur_ns = dur_ns;
    state.prof_in_entries = in_entries;
    node->profile().RecordDelivery(
        in_entries, static_cast<int64_t>(state.out.size()), dur_ns);
  }
}

void ReteNetwork::FlushNode(ReteNode* node, NodeState& state) {
  if (state.out.empty()) return;
  node->AddEmittedEntries(static_cast<int64_t>(state.out.size()));
  const auto& outputs = node->outputs();
  for (size_t i = 0; i < outputs.size(); ++i) {
    const auto& [down, port] = outputs[i];
    auto dst_it = states_.find(down);
    if (dst_it == states_.end()) {
      // Subscriber wired after Attach (no scheduler state): deliver
      // directly, eager-style.
      down->OnDelta(port, state.out);
      continue;
    }
    NodeState& dst = dst_it->second;
    PendingDelta& pending = PendingFor(dst, port);
    if (pending.delta.empty()) {
      // Single consolidated flush: swap (for the last subscriber) and mark
      // clean so delivery skips re-consolidation. A swap rather than a
      // move, so the pending slot's previous-wave buffer comes back as the
      // node's staging buffer instead of being freed — steady-state waves
      // recycle capacity in both directions.
      if (i + 1 == outputs.size()) {
        std::swap(pending.delta, state.out);
      } else {
        pending.delta = state.out;
      }
      pending.clean = true;
    } else {
      pending.delta.insert(pending.delta.end(), state.out.begin(),
                           state.out.end());
      pending.clean = false;
    }
    EnqueueReady(down, dst);
  }
  state.out.clear();
}

void ReteNetwork::DeliverMorselPartition(WaveItem& item, uint32_t partition) {
  NodeState& state = *item.state;
  const bool prof = profiling_;
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  const uint32_t parts = morsel_partitions_resolved_;
  Delta& out = state.morsel_out[partition];
  out.clear();
  for (auto& [port, pending] : state.pending) {
    if (pending.delta.empty()) continue;
    // Keyed nodes consult the precomputed partition map (chunked nodes get
    // nullptr and slice the range themselves). Writes stay inside the
    // shards this partition owns plus its private staging slot, so the
    // pool tasks of one node never touch shared state.
    item.node->OnDeltaMorsel(
        port, pending.delta,
        pending.morsel_map.empty() ? nullptr : pending.morsel_map.data(),
        partition, parts, out);
  }
  if (prof) {
    state.morsel_prof_start_ns[partition] = start_ns;
    state.morsel_prof_dur_ns[partition] = MonotonicNowNs() - start_ns;
  }
}

void ReteNetwork::MergeMorsel(WaveItem& item) {
  NodeState& state = *item.state;
  const uint32_t parts = morsel_partitions_resolved_;
  int64_t in_entries = 0;
  for (auto& [port, pending] : state.pending) {
    (void)port;
    in_entries += static_cast<int64_t>(pending.delta.size());
    // Empty in place, like DeliverPending: slots and buffers survive.
    pending.delta.clear();
    pending.clean = false;
  }
  // Concatenate the per-partition slots in partition order. Chunked nodes
  // processed contiguous input ranges, so this reconstructs the serial
  // emission order exactly; keyed nodes interleave differently, and the
  // consolidation below canonicalizes the order (equal tuples always share
  // a partition — equal key projections hash equally) — downstream
  // deliveries are bit-identical to a serial run either way.
  for (uint32_t p = 0; p < parts; ++p) {
    Delta& slot = state.morsel_out[p];
    if (slot.empty()) continue;
    if (state.out.empty()) {
      // Swap, not move: the slot inherits out's previous-wave buffer.
      std::swap(state.out, slot);
    } else {
      state.out.insert(state.out.end(), std::make_move_iterator(slot.begin()),
                       std::make_move_iterator(slot.end()));
      slot.clear();
    }
  }
  Consolidate(state.out, consolidation_cutoff_);
  if (profiling_) {
    // Busy time is the *sum* of the partition slices (the node's own CPU
    // work, comparable to a serial delivery); the trace keeps one slice
    // per partition so skew inside the node stays visible.
    int64_t busy_ns = 0;
    int64_t first_start = 0;
    for (uint32_t p = 0; p < parts; ++p) {
      busy_ns += state.morsel_prof_dur_ns[p];
      const int64_t start = state.morsel_prof_start_ns[p];
      if (start != 0 && (first_start == 0 || start < first_start)) {
        first_start = start;
      }
    }
    state.prof_start_ns = first_start;
    state.prof_dur_ns = busy_ns;
    state.prof_in_entries = in_entries;
    item.node->profile().RecordDelivery(
        in_entries, static_cast<int64_t>(state.out.size()), busy_ns);
    if (trace_ != nullptr) {
      for (uint32_t p = 0; p < parts; ++p) {
        if (state.morsel_prof_start_ns[p] == 0) continue;
        TraceEvent event;
        event.name = item.node->KindName();
        event.category = "morsel";
        event.start_ns = state.morsel_prof_start_ns[p];
        event.dur_ns = state.morsel_prof_dur_ns[p];
        event.tid = 2;
        event.args = StrCat("\"partition\":", p, ",\"of\":", parts,
                            ",\"in\":", in_entries,
                            ",\"level\":", state.level);
        trace_->Append(std::move(event));
      }
    }
  }
}

void ReteNetwork::DrainWaves() {
  draining_ = true;
  const bool parallel = pool_ != nullptr;
  const bool prof = profiling_;
  const int64_t drain_start_ns = prof ? MonotonicNowNs() : 0;
  int64_t drain_waves = 0;
  int64_t drain_entries = 0;
  const uint32_t parts = morsel_partitions_resolved_;
  const bool morsel_enabled = parallel && parts >= 2;
  for (size_t level = 0; level < ready_by_level_.size(); ++level) {
    std::vector<ReteNode*>& ready = ready_by_level_[level];
    // Appends only target strictly higher levels, so iterating by index
    // while lower levels flush into this one is safe; a level never grows
    // while it is being drained.
    if (ready.empty()) continue;
    //
    // One scheduler-state lookup per node per wave: everything below works
    // off the WaveItems. Queue depths are measured whenever a gate (or
    // profiling — they double as the wave's trace annotation) needs them.
    const bool gate_needs_entries =
        parallel && ready.size() > 1 && parallel_min_wave_entries_ > 0;
    const bool need_entries = prof || morsel_enabled || gate_needs_entries;
    wave_items_.clear();
    wave_items_.reserve(ready.size());
    morsel_tasks_.clear();
    size_t queued_entries = 0;
    size_t max_node_entries = 0;
    for (ReteNode* node : ready) {
      WaveItem item;
      item.node = node;
      item.state = &states_.at(node);
      if (need_entries) {
        for (const auto& [port, pending] : item.state->pending) {
          (void)port;
          item.entries += pending.delta.size();
        }
        queued_entries += item.entries;
        max_node_entries = std::max(max_node_entries, item.entries);
      }
      wave_items_.push_back(item);
    }
    // Work-size gate: near-empty waves (single-change steady state) run
    // inline — waking the pool costs more than delivering a handful of
    // entries. Bit-parity is unaffected; only *where* delivery runs moves.
    const bool wave_parallel =
        parallel && ready.size() > 1 &&
        (parallel_min_wave_entries_ == 0 ||
         queued_entries >= parallel_min_wave_entries_);
    // Morsel selection: an owned node holding a large queued delta has its
    // delivery split into key-partitioned morsels — even when it is the
    // wave's *only* node, which is exactly the case node-level wave
    // parallelism cannot touch (one hot join/aggregate serializes the
    // whole wave, Zipf-keyed workloads being the canonical offender).
    bool any_morsel = false;
    if (morsel_enabled) {
      for (WaveItem& item : wave_items_) {
        if (!item.state->owned || item.entries == 0) continue;
        if (morsel_min_node_entries_ > 0 &&
            item.entries < morsel_min_node_entries_) {
          continue;
        }
        item.kind = item.node->morsel_kind();
        if (item.kind == MorselKind::kNone) continue;
        item.morsel = true;
        any_morsel = true;
      }
    }
    const int64_t wave_start_ns = prof ? MonotonicNowNs() : 0;
    if (any_morsel) {
      // Morsel prep: consolidate each split node's queued deltas *first*
      // (serially — the partition map must describe exactly what will be
      // delivered), then compute the keyed nodes' partition maps
      // chunk-parallel (MorselPartitionMap is a pure function of the now-
      // frozen pending content).
      map_chunks_.clear();
      for (WaveItem& item : wave_items_) {
        if (!item.morsel) continue;
        NodeState& state = *item.state;
        if (state.morsel_out.size() < parts) state.morsel_out.resize(parts);
        if (prof) {
          state.morsel_prof_start_ns.assign(parts, 0);
          state.morsel_prof_dur_ns.assign(parts, 0);
        }
        for (auto& [port, pending] : state.pending) {
          if (!pending.clean) {
            Consolidate(pending.delta, consolidation_cutoff_);
            pending.clean = true;
          }
          if (item.kind == MorselKind::kKeyed && !pending.delta.empty()) {
            const size_t n = pending.delta.size();
            pending.morsel_map.resize(n);
            const size_t chunk = std::max<size_t>(
                256, n / (static_cast<size_t>(pool_->parallelism()) * 4));
            for (size_t begin = 0; begin < n; begin += chunk) {
              map_chunks_.push_back({item.node, &pending.delta,
                                     pending.morsel_map.data(), port, begin,
                                     std::min(begin + chunk, n)});
            }
          }
        }
        for (uint32_t p = 0; p < parts; ++p) {
          morsel_tasks_.push_back({&item, p});
        }
      }
      if (map_chunks_.size() > 1) {
        pool_->Run(map_chunks_.size(), [this, parts](size_t i) {
          const MapChunk& chunk = map_chunks_[i];
          chunk.node->MorselPartitionMap(chunk.port, *chunk.delta, parts,
                                         chunk.begin, chunk.end, chunk.map);
        });
      } else if (!map_chunks_.empty()) {
        const MapChunk& chunk = map_chunks_[0];
        chunk.node->MorselPartitionMap(chunk.port, *chunk.delta, parts,
                                       chunk.begin, chunk.end, chunk.map);
      }
      morsel_waves_dispatched_.fetch_add(1, std::memory_order_relaxed);
    }
    if (wave_parallel) {
      // Phase 1 — the wave's remaining owned nodes run node-parallel
      // alongside the morsel partitions. Each node is claimed by exactly
      // one worker, so node memories and the per-node staging slot
      // (state.out) are single-writer; OnEmit under a live wave only
      // appends to the emitting node's own slot (the node is already
      // queued, so no ready-list mutation). Foreign subscribers (no sink)
      // would cascade eagerly into other nodes, so they stay out of this
      // phase and run at the barrier below. Morsel partitions write only
      // their private staging slot and the memory shards their partition
      // owns, so the combined task list stays data-race-free.
      for (WaveItem& item : wave_items_) {
        if (!item.morsel && item.state->owned) {
          morsel_tasks_.push_back({&item, kDeliverWhole});
        }
      }
    }
    if (morsel_tasks_.size() > 1) {
      parallel_waves_dispatched_.fetch_add(1, std::memory_order_relaxed);
      pool_->Run(morsel_tasks_.size(), [this](size_t i) {
        MorselTask& task = morsel_tasks_[i];
        if (task.partition == kDeliverWhole) {
          DeliverPending(task.item->node, *task.item->state);
        } else {
          DeliverMorselPartition(*task.item, task.partition);
        }
      });
    } else if (!morsel_tasks_.empty()) {
      MorselTask& task = morsel_tasks_[0];
      if (task.partition == kDeliverWhole) {
        DeliverPending(task.item->node, *task.item->state);
      } else {
        DeliverMorselPartition(*task.item, task.partition);
      }
    }
    // Phase 2 — the barrier merge: flush every node's staged output
    // downstream in ready order, exactly the sequence the serial drain
    // produces, so pending queues (and with them every delivered delta)
    // are bit-identical regardless of thread or partition count. Morsel
    // nodes merge their partition slots here, in partition order; nodes
    // phase 1 did not deliver (serial waves; foreign nodes, whose eager
    // cascade must not run on a worker) run their delivery here, in
    // their ready position.
    const int64_t barrier_start_ns = prof ? MonotonicNowNs() : 0;
    const size_t wave_nodes = ready.size();
    for (WaveItem& item : wave_items_) {
      ReteNode* node = item.node;
      NodeState& state = *item.state;
      if (item.morsel) {
        MergeMorsel(item);
      } else if (!wave_parallel || !state.owned) {
        DeliverPending(node, state);
      }
      if (prof && trace_ != nullptr && !item.morsel &&
          (state.prof_in_entries > 0 || !state.out.empty())) {
        // One slice per node that did work this wave (morsel nodes append
        // one slice per partition in MergeMorsel instead). Under a
        // parallel wave the slices of one level overlap in time (they ran
        // on different workers); they are appended here, at the serial
        // barrier, so the buffer itself stays single-writer.
        TraceEvent event;
        event.name = node->KindName();
        event.category = "node";
        event.start_ns = state.prof_start_ns;
        event.dur_ns = state.prof_dur_ns;
        event.tid = 2;
        event.args = StrCat("\"in\":", state.prof_in_entries,
                            ",\"out\":", state.out.size(),
                            ",\"level\":", state.level);
        trace_->Append(std::move(event));
      }
      FlushNode(node, state);
      node->OnWaveBarrier();  // deferred listener notifications etc.
      // Cleared only after the flush: emissions from the node's own wave
      // must not re-enqueue it (nothing new can arrive at this level).
      state.queued = false;
    }
    ready.clear();
    if (prof) {
      const int64_t wave_end_ns = MonotonicNowNs();
      ++drain_waves;
      drain_entries += static_cast<int64_t>(queued_entries);
      if (h_wave_ns_ != nullptr) {
        h_wave_ns_->Record(wave_end_ns - wave_start_ns);
      }
      if (h_barrier_ns_ != nullptr) {
        h_barrier_ns_->Record(wave_end_ns - barrier_start_ns);
      }
      if (h_wave_imbalance_ != nullptr && queued_entries > 0) {
        // Share (percent) of the wave's queued entries held by its single
        // hottest node — 100 means one node owned the whole wave (the
        // skew morsel splitting exists for).
        h_wave_imbalance_->Record(
            static_cast<int64_t>(100 * max_node_entries / queued_entries));
      }
      if (trace_ != nullptr) {
        TraceEvent event;
        event.name = "wave";
        event.start_ns = wave_start_ns;
        event.dur_ns = wave_end_ns - wave_start_ns;
        event.args = StrCat("\"level\":", level, ",\"nodes\":", wave_nodes,
                            ",\"queued\":", queued_entries,
                            ",\"parallel\":", wave_parallel ? 1 : 0,
                            ",\"morsel\":", any_morsel ? 1 : 0);
        trace_->Append(std::move(event));
      }
    }
  }
  // Safety net for productions fed through FlushNode's direct (non-
  // scheduled) delivery branch: they buffer notifications without ever
  // entering a ready list, so no per-wave barrier reaches them. No-op for
  // productions with nothing buffered.
  if (parallel) {
    for (ProductionNode* production : productions_) {
      production->OnWaveBarrier();
    }
  }
  draining_ = false;
  if (prof) {
    const int64_t drain_end_ns = MonotonicNowNs();
    if (h_drain_ns_ != nullptr) {
      h_drain_ns_->Record(drain_end_ns - drain_start_ns);
    }
    if (h_drain_entries_ != nullptr) h_drain_entries_->Record(drain_entries);
    if (trace_ != nullptr) {
      TraceEvent event;
      event.name = "drain";
      event.start_ns = drain_start_ns;
      event.dur_ns = drain_end_ns - drain_start_ns;
      event.args = StrCat("\"waves\":", drain_waves,
                          ",\"entries\":", drain_entries);
      trace_->Append(std::move(event));
    }
  }
  // The network is quiescent and every result bag is consistent: commit.
  PublishEpochs();
}

void ReteNetwork::PublishEpochs() {
  const uint64_t epoch =
      commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t published = 0;
  for (ProductionNode* production : productions_) {
    if (production->PublishSnapshot(epoch, epoch_retention_)) ++published;
  }
  if (published > 0) {
    epochs_published_.fetch_add(published, std::memory_order_relaxed);
  }
}

namespace {

/// Collects everything a node emits while its output is reconstructed for
/// replay (stateless transforms pushed through OnDelta).
class CapturingSink : public EmitSink {
 public:
  explicit CapturingSink(Delta* out) : out_(out) {}
  void OnEmit(ReteNode* from, Delta delta) override {
    (void)from;
    out_->insert(out_->end(), std::make_move_iterator(delta.begin()),
                 std::make_move_iterator(delta.end()));
  }

 private:
  Delta* out_;
};

/// Swaps a node's emit sink for the capture and restores the original on
/// scope exit (nested reconstructions each save their own).
class ScopedSink {
 public:
  ScopedSink(ReteNode* node, EmitSink* sink)
      : node_(node), saved_(node->emit_sink()) {
    node_->set_emit_sink(sink);
  }
  ~ScopedSink() { node_->set_emit_sink(saved_); }

 private:
  ReteNode* node_;
  EmitSink* saved_;
};

}  // namespace

ReteNetwork::InputsMap ReteNetwork::BuildInputsMap(
    const std::vector<ReteNode*>& scope) const {
  InputsMap inputs;
  for (ReteNode* node : scope) {
    for (const auto& [down, port] : node->outputs()) {
      inputs[down].emplace_back(node, port);
    }
  }
  return inputs;
}

const Delta& ReteNetwork::CurrentOutputOf(
    ReteNode* node, const std::vector<ReteNode*>& scope, InputsMap& inputs,
    bool& inputs_built, std::unordered_map<ReteNode*, Delta>& memo) {
  auto it = memo.find(node);
  if (it != memo.end()) return it->second;
  Delta out;
  if (!node->ReplayOutput(out)) {
    // Stateless transform: its output is not materialized anywhere, so
    // reconstruct it by pulling each input's current content (recursively;
    // every upstream of a reused node is itself reused and thus primed)
    // and pushing it through OnDelta under a capturing sink. Safe because
    // stateless nodes mutate no memory and the capture keeps the emission
    // away from the node's real consumers.
    if (!inputs_built) {
      inputs = BuildInputsMap(scope);
      inputs_built = true;
    }
    auto in_it = inputs.find(node);
    if (in_it != inputs.end()) {
      // Copied so the iteration doesn't alias `inputs` across recursion.
      std::vector<std::pair<ReteNode*, int>> ports = in_it->second;
      for (const auto& [upstream, port] : ports) {
        const Delta& content =
            CurrentOutputOf(upstream, scope, inputs, inputs_built, memo);
        CapturingSink capture(&out);
        ScopedSink scoped(node, &capture);
        node->OnDelta(port, content);
      }
    }
  }
  // unordered_map mapped references are stable across rehashes, so the
  // returned reference survives later insertions by the caller's loop.
  return memo.emplace(node, std::move(out)).first->second;
}

Delta ReteNetwork::ReplayOutputOf(ReteNode* node) {
  // Diagnostics entry point: no view scope in hand, so allow the walk to
  // consult the whole network's wiring.
  std::vector<ReteNode*> scope;
  scope.reserve(nodes_.size());
  for (const auto& owned : nodes_) scope.push_back(owned.get());
  InputsMap inputs;
  bool inputs_built = false;
  std::unordered_map<ReteNode*, Delta> memo;
  return CurrentOutputOf(node, scope, inputs, inputs_built, memo);
}

ReteNetwork::PrimeStats ReteNetwork::PrimeNewNodes(
    const std::vector<ReteNode*>& fresh_nodes,
    const std::vector<ReplayEdge>& replay_edges,
    const std::vector<ReteNode*>& replay_scope) {
  PrimeStats stats;
  stats.fresh_nodes = fresh_nodes.size();
  stats.replay_edges = replay_edges.size();
  assert(attached_graph_ != nullptr &&
         "PrimeNewNodes requires an attached, maintaining network");
  if (attached_graph_ == nullptr) return stats;
  assert(!buffering_ && !draining_ && "prime only between graph deltas");

  const bool batched = propagation_ == PropagationStrategy::kBatched;
  // The fresh nodes were wired after the last Attach: give them the same
  // runtime setup Attach gives every node (emit sink; deferred listener
  // notifications under a parallel pool) and rebuild the scheduler so they
  // have levels and state. The network is quiescent — every pending queue
  // is empty — so rebuilding cannot drop sibling deltas.
  for (ReteNode* node : fresh_nodes) {
    node->set_emit_sink(batched ? this : nullptr);
    node->set_profiling(profiling_);
  }
  for (ProductionNode* production : productions_) {
    production->set_defer_notifications(pool_ != nullptr);
  }
  if (batched) PrepareScheduler();

  std::vector<GraphSourceNode*> fresh_sources;
  std::vector<std::pair<ReteNode*, int64_t>> source_baseline;
  for (ReteNode* node : fresh_nodes) {
    if (auto* source = dynamic_cast<GraphSourceNode*>(node)) {
      fresh_sources.push_back(source);
      source_baseline.emplace_back(node, node->emitted_entries());
    }
  }
  stats.primed_sources = fresh_sources.size();

  // Priming rebuilds the new consumers to their steady state; it is not an
  // observable *change* to any view, so listener fan-out stays silent —
  // same contract as Attach priming. (Reused nodes emit nothing here, so
  // sibling productions receive no deltas anyway; the suppression is the
  // defense against replay reaching a production through a chained view.)
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(false);
  }
  buffering_ = true;
  // Structural initial output, then graph content — the Attach order, but
  // restricted to the registration's own nodes. Fresh nodes only feed
  // fresh nodes (a consumer wired now cannot be older than its wiring), so
  // the cascade/drain below never touches a sibling's memories.
  for (ReteNode* node : fresh_nodes) node->EmitInitial();
  for (GraphSourceNode* source : fresh_sources) {
    source->EmitInitialFromGraph();
  }

  // Memory replay: each reused node delivers its materialized output into
  // just the newly attached consumer — the graph is never re-read for
  // sub-plans another view already primed.
  InputsMap inputs;
  bool inputs_built = false;
  std::unordered_map<ReteNode*, Delta> memo;
  for (const ReplayEdge& edge : replay_edges) {
    const Delta& delta =
        CurrentOutputOf(edge.from, replay_scope, inputs, inputs_built, memo);
    stats.replayed_entries += static_cast<int64_t>(delta.size());
    if (delta.empty()) continue;
    if (batched) {
      NodeState& dst = states_.at(edge.to);
      PendingDelta& pending = PendingFor(dst, edge.port);
      pending.delta.insert(pending.delta.end(), delta.begin(), delta.end());
      pending.clean = false;  // replay order is not canonical
      EnqueueReady(edge.to, dst);
    } else {
      edge.to->OnDelta(edge.port, delta);
    }
  }
  buffering_ = false;
  if (batched) {
    DrainWaves();  // publishes the newly primed view's first epoch
  } else {
    PublishEpochs();
  }
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(true);
  }
  for (const auto& [node, before] : source_baseline) {
    stats.graph_primed_entries += node->emitted_entries() - before;
  }
  return stats;
}

int ReteNetwork::node_level(const ReteNode* node) const {
  auto it = states_.find(node);
  return it == states_.end() ? -1 : it->second.level;
}

int64_t ReteNetwork::TotalEmittedEntries() const {
  int64_t total = 0;
  for (const auto& node : nodes_) total += node->emitted_entries();
  return total;
}

int64_t ReteNetwork::SourceEmittedEntries() const {
  int64_t total = 0;
  for (const GraphSourceNode* source : sources_) {
    if (const auto* node = dynamic_cast<const ReteNode*>(source)) {
      total += node->emitted_entries();
    }
  }
  return total;
}

size_t ReteNetwork::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& node : nodes_) bytes += node->ApproxMemoryBytes();
  return bytes;
}

std::vector<ReteNetwork::NodeMetrics> ReteNetwork::NodeMetricsSnapshot()
    const {
  std::vector<NodeMetrics> rows;
  rows.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeMetrics row;
    row.name = node->DebugString();
    row.kind = node->KindName();
    row.level = node_level(node.get());
    row.emitted_entries = node->emitted_entries();
    const NodeProfile& profile = node->profile();
    row.activations = profile.activations.load(std::memory_order_relaxed);
    row.input_entries = profile.input_entries.load(std::memory_order_relaxed);
    row.output_entries =
        profile.output_entries.load(std::memory_order_relaxed);
    row.busy_ns = profile.busy_ns.load(std::memory_order_relaxed);
    row.last_ns = profile.last_ns.load(std::memory_order_relaxed);
    row.memory_bytes = node->ApproxMemoryBytes();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string ReteNetwork::DebugString() const {
  std::ostringstream os;
  os << "propagation=" << PropagationStrategyName(propagation_)
     << " executor=" << ExecutorKindName(executor_);
  if (pool_ != nullptr) os << "(" << pool_->parallelism() << ")";
  os << "\n";
  for (const auto& node : nodes_) {
    os << node->DebugString();
    int level = node_level(node.get());
    if (level >= 0) os << "  level=" << level;
    os << "  mem=" << node->ApproxMemoryBytes()
       << "B emitted=" << node->emitted_entries() << "\n";
  }
  return os.str();
}

}  // namespace pgivm
