#ifndef PGIVM_RETE_PRODUCTION_NODE_H_
#define PGIVM_RETE_PRODUCTION_NODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "rete/node.h"

namespace pgivm {

/// One committed, immutable result version of a production. Published by
/// the writer thread at the network's commit points (the wave barrier of a
/// batched drain; the end of an eager cascade) and pinned by reader threads
/// via shared_ptr — once a reader holds one, its contents never change and
/// it stays alive for as long as the reader keeps the pointer, regardless
/// of how many further epochs the writer commits.
struct PublishedEpoch {
  /// The network commit epoch this bag was published at. A production whose
  /// results did not change at a commit keeps its previous epoch object —
  /// the bag still equals the committed state, just published earlier.
  uint64_t epoch = 0;
  /// The production's change counter (ProductionNode::version) the bag
  /// reflects.
  uint64_t version = 0;
  /// The result bag, frozen at the commit.
  Bag results;
};

/// Observer of a materialized view's changes. `delta` is normalized (tuples
/// coalesced, zero entries dropped) and describes the net effect of one
/// graph delta on the result bag.
class ViewChangeListener {
 public:
  virtual ~ViewChangeListener() = default;
  virtual void OnViewDelta(const Delta& delta) = 0;
};

/// Network root: materializes the result bag of the view and fans change
/// notifications out to listeners. Snapshot() exposes the current rows.
///
/// Concurrent readers: the live `results_` bag is writer-thread-only, but
/// every commit publishes an immutable PublishedEpoch that any thread may
/// pin via PinSnapshot() — see the epoch members at the bottom.
class ProductionNode : public ReteNode {
 public:
  using EpochPtr = std::shared_ptr<const PublishedEpoch>;

  explicit ProductionNode(Schema schema) : ReteNode(std::move(schema)) {
    // Readers may pin before the network ever commits (e.g. a view handle
    // handed out mid-registration); they see the empty bag, never null.
    published_ = std::make_shared<const PublishedEpoch>();
  }

  void OnDelta(int port, const Delta& delta) override;

  /// Flushes notifications buffered while defer_notifications() was on:
  /// one OnViewDelta call per buffered delivery, in delivery order, on the
  /// calling (draining) thread.
  void OnWaveBarrier() override;

  void Reset() override {
    results_.Clear();
    ++version_;
  }

  /// Replays the materialized result bag (chained-view priming).
  bool ReplayOutput(Delta& out) const override {
    out.reserve(out.size() + results_.counts().size());
    for (const auto& [tuple, count] : results_.counts()) {
      out.push_back({tuple, count});
    }
    return true;
  }

  /// Current result bag (tuple -> multiplicity).
  const Bag& results() const { return results_; }

  /// Monotonic change counter: bumped whenever `results()` may have changed
  /// (non-empty delta applied, or Reset). Lets readers cache derived state
  /// (View::Snapshot's sorted rows) and skip recomputation while unchanged.
  uint64_t version() const { return version_; }

  /// Temporarily silences listener fan-out. The network disables
  /// notifications while (re-)priming an attachment: priming replays the
  /// whole graph content, which is not an observable *change* to a view
  /// that sharing-induced re-priming rebuilds to the same rows. Results are
  /// still applied and chained emissions still happen.
  void set_notify_listeners(bool on) { notify_listeners_ = on; }

  /// Under parallel wave execution several productions' OnDelta calls run
  /// concurrently; with this flag set (by the network at a parallel
  /// Attach) listener notifications are buffered instead of fired inline
  /// and delivered from OnWaveBarrier() — serially, in ready order — so
  /// user listener code keeps the serial executor's threading contract.
  /// Result application and chained emissions are unaffected.
  ///
  /// One visible difference from inline delivery: the barrier runs after
  /// the whole wave's deltas are applied, so a listener that reads a
  /// *sibling* view mid-callback may observe same-wave siblings already
  /// updated where the serial executor would still show their previous
  /// rows — never stale and never torn, just at-least-as-fresh. Payload
  /// sequences and final snapshots are identical either way.
  void set_defer_notifications(bool on) { defer_notifications_ = on; }

  /// Publishes the current result bag as the committed state of `epoch`.
  /// Called by the owning network, on the writer thread, at every commit
  /// point (after a drain / eager cascade / prime). When the results did
  /// not change since the last publish the previous epoch object is kept
  /// (no copy — it already equals the committed state); otherwise the bag
  /// is copied into a fresh immutable PublishedEpoch and swapped in.
  ///
  /// `retention` previous epoch objects are kept alive in addition to the
  /// current one, so a reader re-pinning within a short window can still
  /// compare against recent history; beyond that, an epoch lives exactly
  /// as long as some reader pins it (shared_ptr refcount retires it).
  ///
  /// Returns true when a fresh epoch object was published, false when the
  /// previous one was kept — the network counts published epochs with it.
  bool PublishSnapshot(uint64_t epoch, size_t retention);

  /// Pins the last published epoch. Safe to call from any thread, at any
  /// time, concurrently with a drain on the writer thread — publication is
  /// an atomic pointer swap of a fully built object, so readers see either
  /// the previous commit or the new one, never a torn state. Never null.
  EpochPtr PinSnapshot() const;

  /// Rows with multiplicities expanded, sorted for determinism.
  std::vector<Tuple> SortedSnapshot() const;

  /// `bag`'s rows with multiplicities expanded, sorted by Tuple::Compare —
  /// the deterministic rendering Snapshot()/SortedSnapshot() use. Static so
  /// readers can render a pinned epoch's bag without touching the node.
  static std::vector<Tuple> SortedRows(const Bag& bag);

  void AddListener(ViewChangeListener* listener) {
    listeners_.push_back(listener);
  }
  void RemoveListener(ViewChangeListener* listener);

  size_t ApproxMemoryBytes() const override {
    return results_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Production"; }
  const char* KindName() const override { return "Production"; }

 private:
  Bag results_;
  std::vector<ViewChangeListener*> listeners_;
  /// Deliveries whose notification is deferred to the wave barrier (one
  /// element per OnDelta, so listeners see the same call granularity as
  /// under inline notification).
  std::vector<Delta> deferred_notifications_;
  uint64_t version_ = 0;
  bool notify_listeners_ = true;
  bool defer_notifications_ = false;

  /// The last published epoch. Written only by the writer thread (via
  /// atomic_store in PublishSnapshot), read by any thread (atomic_load in
  /// PinSnapshot) — never accessed non-atomically.
  EpochPtr published_;
  /// Writer-side copy of published_->version, so the unchanged-results
  /// fast path needs no atomic load.
  uint64_t published_version_ = 0;
  /// Recent epochs deliberately kept alive (see PublishSnapshot's
  /// `retention`); writer-thread-only.
  std::deque<EpochPtr> retained_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PRODUCTION_NODE_H_
