#include "support/metrics.h"

#include <chrono>
#include <cstdio>
#include <limits>

#include "support/string_util.h"

namespace pgivm {

int64_t MonotonicNowNs() {
  // The origin is captured on the first call (thread-safe static init), so
  // every timestamp in the process shares one timebase and trace events
  // from different threads line up.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

size_t LatencyHistogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // 1 + floor(log2(value)): value 1 -> bucket 1, [2,3] -> 2, [4,7] -> 3...
  size_t index = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++index;
  }
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

void LatencyHistogram::Record(int64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

int64_t HistogramSnapshot::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << index) - 1;
}

int64_t HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested sample, 1-based: ceil(p * count), at least 1.
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count));
  if (static_cast<double>(rank) < p * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      int64_t upper = BucketUpperBound(i);
      // The true sample is somewhere in the bucket; the observed maximum
      // tightens the top bucket (and any percentile) exactly.
      return upper < max ? upper : max;
    }
  }
  return max;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->value());
  }
  return values;  // std::map iteration: already name-ordered
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> values;
  values.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    values.emplace_back(name, histogram->Snapshot());
  }
  return values;
}

bool TraceBuffer::Append(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(event));
  return true;
}

void TraceBuffer::Clear() {
  events_.clear();
  dropped_ = 0;
}

namespace {

/// Minimal JSON string escaping for event names (quotes, backslashes and
/// control characters; everything else passes through byte-for-byte).
void AppendJsonEscaped(const std::string& in, std::string& out) {
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Status WriteChromeTrace(const std::string& path,
                        const std::vector<const TraceBuffer*>& buffers) {
  std::string json;
  json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceBuffer* buffer : buffers) {
    if (buffer == nullptr) continue;
    for (const TraceEvent& event : buffer->events()) {
      if (!first) json += ',';
      first = false;
      json += "\n{\"name\":\"";
      AppendJsonEscaped(event.name, json);
      json += "\",\"cat\":\"";
      json += event.category;
      json += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      json += std::to_string(event.tid);
      // chrome://tracing consumes microseconds; keep nanosecond precision
      // as a fraction.
      char ts[64];
      std::snprintf(ts, sizeof(ts), ",\"ts\":%lld.%03lld,\"dur\":%lld.%03lld",
                    static_cast<long long>(event.start_ns / 1000),
                    static_cast<long long>(event.start_ns % 1000),
                    static_cast<long long>(event.dur_ns / 1000),
                    static_cast<long long>(event.dur_ns % 1000));
      json += ts;
      if (!event.args.empty()) {
        json += ",\"args\":{";
        json += event.args;
        json += '}';
      }
      json += '}';
    }
  }
  json += "\n]}\n";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal(StrCat("cannot open trace file: ", path));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  int closed = std::fclose(file);
  if (written != json.size() || closed != 0) {
    return Status::Internal(StrCat("short write to trace file: ", path));
  }
  return Status::Ok();
}

}  // namespace pgivm
