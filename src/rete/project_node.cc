#include "rete/project_node.h"

namespace pgivm {

void ProjectNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  out.reserve(delta.size());
  for (const DeltaEntry& entry : delta) {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (const BoundExpression& column : columns_) {
      values.push_back(column.Eval(entry.tuple));
    }
    out.push_back({Tuple(std::move(values)), entry.multiplicity});
  }
  Emit(std::move(out));
}

}  // namespace pgivm
