#ifndef PGIVM_ALGEBRA_SCHEMA_H_
#define PGIVM_ALGEBRA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

namespace pgivm {

/// One output column of a (graph) relation. Columns are identified by name:
/// query variables keep their surface name (`p`, `t`), extracted property
/// columns use generated names (`#p.lang`).
struct Attribute {
  /// What the column holds — informational, used for plan printing and a few
  /// sanity checks; runtime values are dynamically typed anyway.
  enum class Kind { kVertex, kEdge, kPath, kValue };

  std::string name;
  Kind kind = Kind::kValue;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.kind == b.kind;
  }
};

/// Ordered list of named attributes — the schema of a graph relation
/// (`sch(r)` in the paper). Names are unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  /// Appends an attribute. Must not duplicate an existing name (asserted via
  /// the Status-returning builder in operator.cc; this is the unchecked
  /// variant for trusted construction).
  void Add(Attribute attr) { attrs_.push_back(std::move(attr)); }

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  const Attribute& at(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }

  /// Index of the attribute called `name`, or -1.
  int IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const { return IndexOf(name) >= 0; }

  /// Names shared between `a` and `b`, in `a`'s order (natural-join keys).
  static std::vector<std::string> CommonNames(const Schema& a,
                                              const Schema& b);

  /// Renders "(p:Vertex, t:Path, #p.lang)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_SCHEMA_H_
