#ifndef PGIVM_RETE_PATH_NODE_H_
#define PGIVM_RETE_PATH_NODE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/property_graph.h"
#include "rete/input_node.h"
#include "value/path.h"

namespace pgivm {

/// The transitive base relation behind the paper's transitive join (./∗):
/// one tuple [left, right (, path)] per *trail* (edge-unique path, Cypher's
/// variable-length semantics) over edges of the given types with length in
/// [min_hops, max_hops]. `reversed` realizes incoming variable-length
/// patterns: steps follow edges backwards while the emitted path still runs
/// in pattern order, left to right.
///
/// This node is where the paper's ORD compromise lives: paths are
/// materialized as atomic, ordered values. An edge insertion asserts exactly
/// the set of new trails running through that edge (enumerated against the
/// current graph); an edge deletion retracts exactly the stored trails
/// containing it (via the edge→path index). Paths are never edited in
/// place.
class PathInputNode : public ReteNode, public GraphSourceNode {
 public:
  PathInputNode(Schema schema, const PropertyGraph* graph,
                std::vector<std::string> types, bool reversed,
                int64_t min_hops, int64_t max_hops, bool emit_path);

  void OnDelta(int port, const Delta& delta) override;
  void HandleChange(const GraphChange& change) override;
  void EmitInitialFromGraph() override;

  /// Replays every materialized trail (and, for min_hops == 0, the
  /// asserted zero-length paths).
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    paths_.clear();
    edge_index_.clear();
    trail_keys_.clear();
    zero_asserted_.clear();
    next_path_id_ = 0;
  }

  size_t ApproxMemoryBytes() const override;
  std::string DebugString() const override;
  const char* KindName() const override { return "PathInput"; }

  /// Number of materialized trails (excluding zero-length paths).
  size_t path_count() const { return paths_.size(); }

 private:
  using TrailCallback =
      std::function<void(const std::vector<VertexId>& vertices,
                         const std::vector<EdgeId>& edges)>;

  bool TypeMatches(const std::string& type) const;
  /// Type test against an interned type symbol — the per-edge check inside
  /// the DFS steps, so it must not touch strings.
  bool TypeMatchesId(SymbolId type) const;
  Tuple MakeTuple(const Path& path) const;

  /// Pattern-forward steps from `a`: calls fn(edge, next_vertex) for each
  /// type-matching edge leaving `a` (entering, when reversed).
  void ForEachStep(VertexId a,
                   const std::function<void(EdgeId, VertexId)>& fn) const;
  /// Pattern-backward steps into `a`.
  void ForEachReverseStep(
      VertexId a, const std::function<void(EdgeId, VertexId)>& fn) const;

  /// Enumerates trails starting at `start` (pattern direction), length 0 to
  /// `limit`, avoiding edges in `used`. The callback sees vertices
  /// [start..end] and the edge list; the empty trail is included.
  void DfsForward(VertexId start, int64_t limit,
                  std::unordered_set<EdgeId>& used,
                  std::vector<VertexId>& vertices, std::vector<EdgeId>& edges,
                  const TrailCallback& cb) const;

  /// Enumerates trails *ending* at `end`, mirrored version of DfsForward.
  /// The callback sees vertices in pattern order [first..end].
  void DfsBackward(VertexId end, int64_t limit,
                   std::unordered_set<EdgeId>& used,
                   std::vector<VertexId>& vertices_rev,
                   std::vector<EdgeId>& edges_rev, const TrailCallback& cb)
      const;

  void AddPath(Path path, Delta& out);
  void RemovePathsContaining(EdgeId e, Delta& out);

  int64_t ForwardLimit() const;

  const PropertyGraph* graph_;
  std::vector<std::string> types_;
  std::vector<SymbolRef> type_refs_;  // lazy name→symbol resolution
  bool reversed_;
  int64_t min_hops_;
  int64_t max_hops_;  // -1 = unbounded (trail property still bounds length)
  bool emit_path_;

  struct EdgeSeqHash {
    size_t operator()(const std::vector<EdgeId>& edges) const {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (EdgeId e : edges) {
        h = (h ^ static_cast<size_t>(e)) * 1099511628211ULL;
      }
      return h;
    }
  };

  int64_t next_path_id_ = 0;
  std::unordered_map<int64_t, Path> paths_;
  std::unordered_map<EdgeId, std::vector<int64_t>> edge_index_;
  /// Edge sequences of the stored trails (a trail is uniquely determined by
  /// its edges). Guards AddPath against double-assertion: a trail running
  /// through several edges added in the *same* graph delta is enumerated
  /// once per such edge, because each kAddEdge is translated against the
  /// final (fully applied) graph state.
  std::unordered_set<std::vector<EdgeId>, EdgeSeqHash> trail_keys_;
  std::unordered_set<VertexId> zero_asserted_;  // min_hops == 0 only
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PATH_NODE_H_
