#include "baseline/baseline_evaluator.h"

#include <gtest/gtest.h>

#include "algebra/compiler.h"
#include "algebra/passes/pass_manager.h"
#include "cypher/parser.h"

namespace pgivm {
namespace {

std::vector<Tuple> Evaluate(const PropertyGraph& graph,
                            const std::string& query) {
  Result<Query> parsed = ParseQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Result<OpPtr> gra = CompileToGra(parsed.value());
  EXPECT_TRUE(gra.ok()) << gra.status();
  Result<OpPtr> fra = LowerToFra(gra.value());
  EXPECT_TRUE(fra.ok()) << fra.status();
  BaselineEvaluator evaluator(&graph);
  Result<Bag> bag = evaluator.Evaluate(fra.value());
  EXPECT_TRUE(bag.ok()) << bag.status();
  return BaselineEvaluator::SortedRows(bag.value());
}

TEST(BaselineTest, LabelScan) {
  PropertyGraph graph;
  graph.AddVertex({"A"});
  graph.AddVertex({"A"});
  graph.AddVertex({"B"});
  EXPECT_EQ(Evaluate(graph, "MATCH (n:A) RETURN n").size(), 2u);
  EXPECT_EQ(Evaluate(graph, "MATCH (n) RETURN n").size(), 3u);
}

TEST(BaselineTest, EdgePatternWithFilter) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"P"}, {{"age", Value::Int(30)}});
  VertexId b = graph.AddVertex({"P"}, {{"age", Value::Int(20)}});
  (void)graph.AddEdge(a, b, "KNOWS").value();
  (void)graph.AddEdge(b, a, "KNOWS").value();
  std::vector<Tuple> rows = Evaluate(
      graph, "MATCH (x:P)-[:KNOWS]->(y:P) WHERE x.age > y.age RETURN x, y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Vertex(a));
}

TEST(BaselineTest, VariableLengthPaths) {
  PropertyGraph graph;
  VertexId v1 = graph.AddVertex({"N"});
  VertexId v2 = graph.AddVertex({"N"});
  VertexId v3 = graph.AddVertex({"N"});
  (void)graph.AddEdge(v1, v2, "T").value();
  (void)graph.AddEdge(v2, v3, "T").value();
  EXPECT_EQ(Evaluate(graph, "MATCH (a:N)-[:T*]->(b:N) RETURN a, b").size(),
            3u);
  EXPECT_EQ(
      Evaluate(graph, "MATCH (a:N)-[:T*2..2]->(b:N) RETURN a, b").size(),
      1u);
  EXPECT_EQ(
      Evaluate(graph, "MATCH (a:N)-[:T*0..]->(b:N) RETURN a, b").size(),
      6u);  // 3 zero-length + 3 proper.
}

TEST(BaselineTest, AggregationAndGrouping) {
  PropertyGraph graph;
  graph.AddVertex({"X"}, {{"g", Value::Int(1)}, {"v", Value::Int(10)}});
  graph.AddVertex({"X"}, {{"g", Value::Int(1)}, {"v", Value::Int(20)}});
  graph.AddVertex({"X"}, {{"g", Value::Int(2)}, {"v", Value::Int(5)}});
  std::vector<Tuple> rows = Evaluate(
      graph,
      "MATCH (n:X) RETURN n.g AS g, count(*) AS c, sum(n.v) AS s, "
      "min(n.v) AS mn, max(n.v) AS mx, avg(n.v) AS a");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at(0), Value::Int(1));
  EXPECT_EQ(rows[0].at(1), Value::Int(2));
  EXPECT_EQ(rows[0].at(2), Value::Int(30));
  EXPECT_EQ(rows[0].at(3), Value::Int(10));
  EXPECT_EQ(rows[0].at(4), Value::Int(20));
  EXPECT_EQ(rows[0].at(5), Value::Double(15.0));
}

TEST(BaselineTest, KeylessAggregateOnEmptyInput) {
  PropertyGraph graph;
  std::vector<Tuple> rows =
      Evaluate(graph, "MATCH (n:X) RETURN count(*) AS c");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Int(0));
}

TEST(BaselineTest, OptionalMatchPadsNulls) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"A"});
  VertexId c = graph.AddVertex({"C"});
  (void)graph.AddEdge(a, c, "T").value();
  std::vector<Tuple> rows = Evaluate(
      graph, "MATCH (n:A) OPTIONAL MATCH (n)-[:T]->(m) RETURN n, m");
  ASSERT_EQ(rows.size(), 2u);
  // Row for `a` has m = c; row for `b` has m = null.
  EXPECT_EQ(rows[0].at(0), Value::Vertex(a));
  EXPECT_EQ(rows[0].at(1), Value::Vertex(c));
  EXPECT_EQ(rows[1].at(0), Value::Vertex(b));
  EXPECT_TRUE(rows[1].at(1).is_null());
}

TEST(BaselineTest, UnwindAndDistinct) {
  PropertyGraph graph;
  graph.AddVertex({"P"},
                  {{"tags", Value::List({Value::Int(1), Value::Int(2),
                                         Value::Int(1)})}});
  EXPECT_EQ(
      Evaluate(graph, "MATCH (p:P) UNWIND p.tags AS t RETURN t").size(), 3u);
  EXPECT_EQ(Evaluate(graph,
                     "MATCH (p:P) UNWIND p.tags AS t RETURN DISTINCT t")
                .size(),
            2u);
}

TEST(BaselineTest, PatternFreeQuery) {
  PropertyGraph graph;
  std::vector<Tuple> rows =
      Evaluate(graph, "UNWIND [1, 2, 3] AS x RETURN x * 10 AS y");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].at(0), Value::Int(30));
}

}  // namespace
}  // namespace pgivm
