#include "rete/antijoin_node.h"

#include <cassert>

namespace pgivm {

AntiJoinNode::AntiJoinNode(Schema schema, const Schema& left,
                           const Schema& right)
    : ReteNode(std::move(schema)), layout_(JoinLayout::Make(left, right)) {}

void AntiJoinNode::ProcessEntries(int port, const Delta& delta,
                                  const uint32_t* map, uint32_t partition,
                                  Delta& out) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (map != nullptr && map[i] != partition) continue;
    const DeltaEntry& entry = delta[i];
    if (port == 0) {
      Tuple key = entry.tuple.Project(layout_.left_key);
      auto& shard = left_memory_.shard(key);
      Bag& bag = shard[key];
      bag.Apply(entry.tuple, entry.multiplicity);
      if (bag.total_count() == 0) shard.erase(key);
      const int64_t* support = right_support_.Find(key);
      if (support == nullptr || *support == 0) {
        out.push_back(entry);
      }
    } else {
      Tuple key = entry.tuple.Project(layout_.right_key);
      auto& shard = right_support_.shard(key);
      int64_t& support = shard[key];
      int64_t old_support = support;
      support += entry.multiplicity;
      assert(support >= 0 && "anti-join right support went negative");
      if (support == 0) shard.erase(key);
      bool was_absent = old_support == 0;
      bool is_absent = old_support + entry.multiplicity == 0;
      if (was_absent == is_absent) continue;
      const Bag* lefts = left_memory_.Find(key);
      if (lefts == nullptr) continue;
      // Key gained its first partner: retract the lefts; lost its last
      // partner: re-assert them.
      int64_t sign = was_absent ? -1 : 1;
      for (const auto& [left_tuple, count] : lefts->counts()) {
        out.push_back({left_tuple, sign * count});
      }
    }
  }
}

void AntiJoinNode::OnDelta(int port, const Delta& delta) {
  Delta out;
  ProcessEntries(port, delta, /*map=*/nullptr, /*partition=*/0, out);
  Emit(std::move(out));
}

void AntiJoinNode::MorselPartitionMap(int port, const Delta& delta,
                                      uint32_t partitions, size_t begin,
                                      size_t end, uint32_t* map) const {
  const std::vector<int>& key =
      port == 0 ? layout_.left_key : layout_.right_key;
  for (size_t i = begin; i < end; ++i) {
    map[i] = MorselPartitionOfHash(delta[i].tuple.HashProjected(key),
                                   partitions);
  }
}

void AntiJoinNode::OnDeltaMorsel(int port, const Delta& delta,
                                 const uint32_t* map, uint32_t partition,
                                 uint32_t partitions, Delta& out) {
  (void)partitions;
  ProcessEntries(port, delta, map, partition, out);
}

bool AntiJoinNode::ReplayOutput(Delta& out) const {
  left_memory_.ForEach([&](const Tuple& key, const Bag& bag) {
    const int64_t* support = right_support_.Find(key);
    if (support != nullptr && *support > 0) return;
    for (const auto& [left_tuple, count] : bag.counts()) {
      out.push_back({left_tuple, count});
    }
  });
  return true;
}

size_t AntiJoinNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  left_memory_.ForEach([&](const Tuple& key, const Bag& bag) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  });
  bytes += right_support_.size() * (sizeof(Tuple) + sizeof(int64_t));
  return bytes;
}

}  // namespace pgivm
