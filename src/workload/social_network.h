#ifndef PGIVM_WORKLOAD_SOCIAL_NETWORK_H_
#define PGIVM_WORKLOAD_SOCIAL_NETWORK_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "support/rng.h"

namespace pgivm {

/// Configuration of the LDBC-SNB-flavoured social network generator.
///
/// The LDBC Social Network Benchmark (paper ref [17]) is not redistributable
/// here; this generator synthesizes a graph with the same schema flavour —
/// Persons who know each other, Posts and transitive Comment reply trees,
/// likes, languages, and collection-valued profile properties — and an
/// update stream with SNB-like operation mix. That preserves what the
/// experiments measure: propagation cost under realistic graph shapes.
struct SocialNetworkConfig {
  int64_t persons = 50;
  int64_t posts_per_person = 2;
  /// Expected number of (transitive) comments below each post.
  int64_t comments_per_post = 4;
  int64_t max_reply_depth = 4;
  int64_t knows_per_person = 3;
  double like_probability = 0.3;
  uint64_t seed = 42;
};

/// Builds and evolves the social graph.
///
/// Vertices: (:Person {name, country, speaks: [lang...]}),
///           (:Post {lang, length}), (:Comm {lang, length}).
/// Edges:    (:Person)-[:KNOWS]->(:Person),
///           (message)-[:REPLY]->(:Comm)        — parent to reply,
///           (:Person)-[:LIKES]->(message),
///           (message)-[:HAS_CREATOR]->(:Person).
class SocialNetworkGenerator {
 public:
  explicit SocialNetworkGenerator(const SocialNetworkConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Populates `graph` (one batch per entity family). Call once.
  void Populate(PropertyGraph* graph);

  /// Applies one random update drawn from the SNB-like operation mix:
  /// new reply comment, new like, new knows edge, language flip, profile
  /// language append/removal, or leaf-comment deletion. Emits one delta
  /// per call, unless the caller is composing a larger batch (then the
  /// changes join it).
  void ApplyRandomUpdate(PropertyGraph* graph);

  const std::vector<VertexId>& persons() const { return persons_; }
  const std::vector<VertexId>& posts() const { return posts_; }
  const std::vector<VertexId>& comments() const { return comments_; }

  /// Languages used by the generator.
  static const std::vector<std::string>& Languages();

 private:
  std::string RandomLanguage();
  VertexId RandomMessage();

  /// Adds one reply comment under `parent` and returns it.
  VertexId AddReply(PropertyGraph* graph, VertexId parent);

  SocialNetworkConfig config_;
  Rng rng_;
  std::vector<VertexId> persons_;
  std::vector<VertexId> posts_;
  std::vector<VertexId> comments_;
};

}  // namespace pgivm

#endif  // PGIVM_WORKLOAD_SOCIAL_NETWORK_H_
