#include "graph/property_graph.h"

#include <algorithm>
#include <cassert>

#include "support/string_util.h"

namespace pgivm {

namespace {

void SortUnique(std::vector<std::string>& labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
}

void EraseId(std::vector<int64_t>& ids, int64_t id) {
  auto it = std::find(ids.begin(), ids.end(), id);
  if (it != ids.end()) ids.erase(it);
}

}  // namespace

PropertyGraph::VertexData& PropertyGraph::MutableVertex(VertexId id) {
  assert(HasVertex(id));
  return vertices_[static_cast<size_t>(id)];
}

const PropertyGraph::VertexData& PropertyGraph::GetVertex(VertexId id) const {
  assert(HasVertex(id));
  return vertices_[static_cast<size_t>(id)];
}

PropertyGraph::EdgeData& PropertyGraph::MutableEdge(EdgeId id) {
  assert(HasEdge(id));
  return edges_[static_cast<size_t>(id)];
}

const PropertyGraph::EdgeData& PropertyGraph::GetEdge(EdgeId id) const {
  assert(HasEdge(id));
  return edges_[static_cast<size_t>(id)];
}

VertexId PropertyGraph::AddVertex(std::vector<std::string> labels,
                                  ValueMap properties) {
  SortUnique(labels);
  // Null-valued entries mean "absent" everywhere in the API; normalize here.
  for (auto it = properties.begin(); it != properties.end();) {
    it = it->second.is_null() ? properties.erase(it) : std::next(it);
  }

  VertexId id = static_cast<VertexId>(vertices_.size());
  VertexData data;
  data.alive = true;
  data.labels = labels;
  data.properties = properties;
  vertices_.push_back(std::move(data));
  ++live_vertex_count_;
  for (const std::string& label : labels) label_index_[label].insert(id);

  GraphChange change;
  change.kind = GraphChange::Kind::kAddVertex;
  change.vertex = id;
  change.labels = std::move(labels);
  change.properties = std::move(properties);
  Record(std::move(change));
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst,
                                      std::string type, ValueMap properties) {
  if (!HasVertex(src)) {
    return Status::NotFound(StrCat("source vertex ", src, " does not exist"));
  }
  if (!HasVertex(dst)) {
    return Status::NotFound(StrCat("target vertex ", dst, " does not exist"));
  }
  for (auto it = properties.begin(); it != properties.end();) {
    it = it->second.is_null() ? properties.erase(it) : std::next(it);
  }

  EdgeId id = static_cast<EdgeId>(edges_.size());
  EdgeData data;
  data.alive = true;
  data.src = src;
  data.dst = dst;
  data.type = type;
  data.properties = properties;
  edges_.push_back(std::move(data));
  ++live_edge_count_;
  type_index_[type].insert(id);
  vertices_[static_cast<size_t>(src)].out_edges.push_back(id);
  vertices_[static_cast<size_t>(dst)].in_edges.push_back(id);

  GraphChange change;
  change.kind = GraphChange::Kind::kAddEdge;
  change.edge = id;
  change.src = src;
  change.dst = dst;
  change.edge_type = std::move(type);
  change.properties = std::move(properties);
  Record(std::move(change));
  return id;
}

Status PropertyGraph::RemoveEdge(EdgeId edge) {
  if (!HasEdge(edge)) {
    return Status::NotFound(StrCat("edge ", edge, " does not exist"));
  }
  EdgeData& data = MutableEdge(edge);

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveEdge;
  change.edge = edge;
  change.src = data.src;
  change.dst = data.dst;
  change.edge_type = data.type;
  change.properties = data.properties;

  EraseId(vertices_[static_cast<size_t>(data.src)].out_edges, edge);
  EraseId(vertices_[static_cast<size_t>(data.dst)].in_edges, edge);
  type_index_[data.type].erase(edge);
  data.alive = false;
  data.properties.clear();
  --live_edge_count_;

  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::RemoveVertex(VertexId vertex) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  if (!data.out_edges.empty() || !data.in_edges.empty()) {
    return Status::FailedPrecondition(
        StrCat("vertex ", vertex,
               " still has incident edges; use DetachRemoveVertex"));
  }

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveVertex;
  change.vertex = vertex;
  change.labels = data.labels;
  change.properties = data.properties;

  for (const std::string& label : data.labels) {
    label_index_[label].erase(vertex);
  }
  data.alive = false;
  data.properties.clear();
  data.labels.clear();
  --live_vertex_count_;

  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::DetachRemoveVertex(VertexId vertex) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  // Copy: RemoveEdge mutates the incident lists while we iterate.
  std::vector<EdgeId> incident = GetVertex(vertex).out_edges;
  const std::vector<EdgeId>& in = GetVertex(vertex).in_edges;
  incident.insert(incident.end(), in.begin(), in.end());
  // Self-loops appear in both lists; deduplicate.
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  for (EdgeId e : incident) PGIVM_RETURN_IF_ERROR(RemoveEdge(e));
  return RemoveVertex(vertex);
}

Status PropertyGraph::SetPropertyImpl(bool is_vertex, int64_t id,
                                      std::string key, Value value) {
  ValueMap* props = nullptr;
  GraphChange change;
  if (is_vertex) {
    if (!HasVertex(id)) {
      return Status::NotFound(StrCat("vertex ", id, " does not exist"));
    }
    VertexData& data = MutableVertex(id);
    props = &data.properties;
    change.kind = GraphChange::Kind::kSetVertexProperty;
    change.vertex = id;
    change.labels = data.labels;
  } else {
    if (!HasEdge(id)) {
      return Status::NotFound(StrCat("edge ", id, " does not exist"));
    }
    EdgeData& data = MutableEdge(id);
    props = &data.properties;
    change.kind = GraphChange::Kind::kSetEdgeProperty;
    change.edge = id;
    change.src = data.src;
    change.dst = data.dst;
    change.edge_type = data.type;
  }

  auto it = props->find(key);
  Value old_value = it == props->end() ? Value::Null() : it->second;
  if (old_value == value) return Status::Ok();  // No-op write.

  if (value.is_null()) {
    props->erase(it);
  } else {
    (*props)[key] = value;
  }

  change.property_key = std::move(key);
  change.old_value = std::move(old_value);
  change.new_value = std::move(value);
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::SetVertexProperty(VertexId vertex, std::string key,
                                        Value value) {
  return SetPropertyImpl(/*is_vertex=*/true, vertex, std::move(key),
                         std::move(value));
}

Status PropertyGraph::SetEdgeProperty(EdgeId edge, std::string key,
                                      Value value) {
  return SetPropertyImpl(/*is_vertex=*/false, edge, std::move(key),
                         std::move(value));
}

Status PropertyGraph::AddVertexLabel(VertexId vertex, std::string label) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it != data.labels.end() && *it == label) return Status::Ok();
  data.labels.insert(it, label);
  label_index_[label].insert(vertex);

  GraphChange change;
  change.kind = GraphChange::Kind::kAddVertexLabel;
  change.vertex = vertex;
  change.labels = {std::move(label)};
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::RemoveVertexLabel(VertexId vertex,
                                        const std::string& label) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), label);
  if (it == data.labels.end() || *it != label) return Status::Ok();
  data.labels.erase(it);
  label_index_[label].erase(vertex);

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveVertexLabel;
  change.vertex = vertex;
  change.labels = {label};
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::ListAppend(VertexId vertex, const std::string& key,
                                 Value element) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, key);
  ValueList elements;
  if (current.is_list()) {
    elements = current.AsList();
  } else if (!current.is_null()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a list"));
  }
  elements.push_back(std::move(element));
  return SetVertexProperty(vertex, key, Value::List(std::move(elements)));
}

Status PropertyGraph::ListRemoveFirst(VertexId vertex, const std::string& key,
                                      const Value& element) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, key);
  if (!current.is_list()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a list"));
  }
  ValueList elements = current.AsList();
  auto it = std::find(elements.begin(), elements.end(), element);
  if (it == elements.end()) {
    return Status::NotFound(StrCat("element ", element.ToString(),
                                   " not present in list property '", key,
                                   "'"));
  }
  elements.erase(it);
  return SetVertexProperty(vertex, key, Value::List(std::move(elements)));
}

Status PropertyGraph::MapPut(VertexId vertex, const std::string& key,
                             const std::string& entry_key, Value value) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, key);
  ValueMap entries;
  if (current.is_map()) {
    entries = current.AsMap();
  } else if (!current.is_null()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a map"));
  }
  entries[entry_key] = std::move(value);
  return SetVertexProperty(vertex, key, Value::Map(std::move(entries)));
}

Status PropertyGraph::MapErase(VertexId vertex, const std::string& key,
                               const std::string& entry_key) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, key);
  if (!current.is_map()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a map"));
  }
  ValueMap entries = current.AsMap();
  if (entries.erase(entry_key) == 0) return Status::Ok();
  return SetVertexProperty(vertex, key, Value::Map(std::move(entries)));
}

void PropertyGraph::BeginBatch() {
  assert(!in_batch_ && "batches do not nest");
  in_batch_ = true;
  pending_.changes.clear();
}

void PropertyGraph::CommitBatch() {
  assert(in_batch_);
  in_batch_ = false;
  if (pending_.empty()) return;
  GraphDelta delta;
  delta.changes.swap(pending_.changes);
  Emit(std::move(delta));
}

void PropertyGraph::AddListener(GraphListener* listener) {
  listeners_.push_back(listener);
}

void PropertyGraph::RemoveListener(GraphListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void PropertyGraph::Record(GraphChange change) {
  if (in_batch_) {
    pending_.changes.push_back(std::move(change));
    return;
  }
  GraphDelta delta;
  delta.changes.push_back(std::move(change));
  Emit(std::move(delta));
}

void PropertyGraph::Emit(GraphDelta delta) {
  for (GraphListener* listener : listeners_) {
    listener->OnGraphDelta(delta);
  }
}

bool PropertyGraph::HasVertex(VertexId vertex) const {
  return vertex >= 0 && static_cast<size_t>(vertex) < vertices_.size() &&
         vertices_[static_cast<size_t>(vertex)].alive;
}

bool PropertyGraph::HasEdge(EdgeId edge) const {
  return edge >= 0 && static_cast<size_t>(edge) < edges_.size() &&
         edges_[static_cast<size_t>(edge)].alive;
}

const std::vector<std::string>& PropertyGraph::VertexLabels(
    VertexId vertex) const {
  return GetVertex(vertex).labels;
}

bool PropertyGraph::VertexHasLabel(VertexId vertex,
                                   std::string_view label) const {
  const std::vector<std::string>& labels = GetVertex(vertex).labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

Value PropertyGraph::GetVertexProperty(VertexId vertex,
                                       std::string_view key) const {
  const ValueMap& props = GetVertex(vertex).properties;
  auto it = props.find(std::string(key));
  return it == props.end() ? Value::Null() : it->second;
}

Value PropertyGraph::GetEdgeProperty(EdgeId edge, std::string_view key) const {
  const ValueMap& props = GetEdge(edge).properties;
  auto it = props.find(std::string(key));
  return it == props.end() ? Value::Null() : it->second;
}

const ValueMap& PropertyGraph::VertexProperties(VertexId vertex) const {
  return GetVertex(vertex).properties;
}

const ValueMap& PropertyGraph::EdgeProperties(EdgeId edge) const {
  return GetEdge(edge).properties;
}

VertexId PropertyGraph::EdgeSource(EdgeId edge) const {
  return GetEdge(edge).src;
}

VertexId PropertyGraph::EdgeTarget(EdgeId edge) const {
  return GetEdge(edge).dst;
}

const std::string& PropertyGraph::EdgeType(EdgeId edge) const {
  return GetEdge(edge).type;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(VertexId vertex) const {
  return GetVertex(vertex).out_edges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(VertexId vertex) const {
  return GetVertex(vertex).in_edges;
}

std::vector<VertexId> PropertyGraph::VerticesWithLabel(
    std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  if (it == label_index_.end()) return {};
  return std::vector<VertexId>(it->second.begin(), it->second.end());
}

std::vector<EdgeId> PropertyGraph::EdgesWithType(std::string_view type) const {
  auto it = type_index_.find(std::string(type));
  if (it == type_index_.end()) return {};
  return std::vector<EdgeId>(it->second.begin(), it->second.end());
}

void PropertyGraph::ForEachVertex(
    const std::function<void(VertexId)>& fn) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].alive) fn(static_cast<VertexId>(i));
  }
}

void PropertyGraph::ForEachEdge(const std::function<void(EdgeId)>& fn) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].alive) fn(static_cast<EdgeId>(i));
  }
}

size_t PropertyGraph::ApproxMemoryBytes() const {
  size_t bytes = vertices_.capacity() * sizeof(VertexData) +
                 edges_.capacity() * sizeof(EdgeData);
  auto value_bytes = [](const Value& v) {
    // Shallow estimate: enough for trend lines in the memory experiment.
    size_t b = sizeof(Value);
    if (v.is_string()) b += v.AsString().size();
    if (v.is_list()) b += v.AsList().size() * sizeof(Value);
    if (v.is_map()) b += v.AsMap().size() * (sizeof(Value) + 16);
    return b;
  };
  for (const VertexData& v : vertices_) {
    for (const std::string& l : v.labels) bytes += l.size() + sizeof(l);
    for (const auto& [k, val] : v.properties) {
      bytes += k.size() + value_bytes(val);
    }
    bytes += (v.out_edges.capacity() + v.in_edges.capacity()) * sizeof(EdgeId);
  }
  for (const EdgeData& e : edges_) {
    bytes += e.type.size();
    for (const auto& [k, val] : e.properties) {
      bytes += k.size() + value_bytes(val);
    }
  }
  for (const auto& [label, ids] : label_index_) {
    bytes += label.size() + ids.size() * sizeof(VertexId) * 2;
  }
  for (const auto& [type, ids] : type_index_) {
    bytes += type.size() + ids.size() * sizeof(EdgeId) * 2;
  }
  return bytes;
}

}  // namespace pgivm
