// Tests of the view catalog and its shared Rete sub-networks: fingerprint-
// based node reuse (alias-insensitive), refcounted detach, per-view memory
// attribution, listener silence during sharing-induced re-priming, and the
// shared-vs-private differential acceptance criterion.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/node_registry.h"
#include "engine/query_engine.h"
#include "workload/railway.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

EngineOptions SharingDisabled() {
  EngineOptions options;
  options.catalog.share_operator_state = false;
  return options;
}

/// Ten standing social-network views with heavily overlapping prefixes —
/// the paper's §1 monitoring deployment (many views, one graph). As in
/// real standing-query catalogs, several dashboards register the same
/// query under different aliases, or variants differing only in the final
/// filter/aggregation; structural sharing collapses all of that.
std::vector<std::string> OverlappingSocialViews() {
  return {
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m",
      "MATCH (fan:Person)-[:LIKES]->(msg:Post) RETURN fan, msg",
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l",
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country "
      "RETURN a, b",
      "MATCH (p:Person)-[:KNOWS]->(q:Person) WHERE p.country = q.country "
      "RETURN p, q",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang "
      "RETURN x, y",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang <> c.lang "
      "RETURN p, c",
      "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
      "MATCH (q:Post) RETURN q.lang AS l, count(*) AS n",
  };
}

TEST(NodeRegistry, CanonicalKeysAreAliasInsensitive) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto plan_a =
      engine.Compile("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c");
  auto plan_b =
      engine.Compile("MATCH (x:Post)-[:REPLY]->(y:Comm) RETURN x, y");
  auto plan_c =
      engine.Compile("MATCH (p:Post)-[:LIKES]->(c:Comm) RETURN p, c");
  ASSERT_TRUE(plan_a.ok() && plan_b.ok() && plan_c.ok());

  std::string key_a = CanonicalPlanKey(**plan_a);
  std::string key_b = CanonicalPlanKey(**plan_b);
  std::string key_c = CanonicalPlanKey(**plan_c);
  ASSERT_FALSE(key_a.empty());
  EXPECT_EQ(key_a, key_b);  // aliases do not matter
  EXPECT_NE(key_a, key_c);  // edge types do
}

TEST(CatalogSharing, RenamedDuplicateViewAddsOnlyAProduction) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto first = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c");
  ASSERT_TRUE(first.ok()) << first.status();
  size_t nodes_before = engine.catalog().Stats().total_nodes;

  auto second = engine.Register(
      "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang RETURN x, y");
  ASSERT_TRUE(second.ok()) << second.status();

  CatalogStats stats = engine.catalog().Stats();
  // The whole plan was reused; only the second view's private production
  // was added.
  EXPECT_EQ(stats.total_nodes, nodes_before + 1);
  EXPECT_GT(stats.registry_hits, 0);
  EXPECT_GT(stats.shared_nodes, 0u);

  // Both views maintain identical (correct) results.
  generator.ApplyRandomUpdate(&graph);
  EXPECT_EQ((*first)->Snapshot().size(), (*second)->Snapshot().size());
}

TEST(CatalogSharing, WithinViewDuplicateSubPlanIsInstantiatedOnce) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 25;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  // Both KNOWS hops and all three Person scans are structurally identical
  // sub-plans: the shared network instantiates each once and the join
  // becomes a self-join through one shared node.
  const char* query =
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "RETURN a, b, c";
  auto view = engine.Register(query);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_GT(engine.catalog().Stats().registry_hits, 0);

  for (int step = 0; step < 25; ++step) {
    generator.ApplyRandomUpdate(&graph);
    auto expected = engine.EvaluateOnce(query);
    ASSERT_TRUE(expected.ok());
    std::vector<Tuple> actual = (*view)->Snapshot();
    ASSERT_EQ(actual.size(), expected.value().size()) << "step " << step;
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(Tuple::Compare(actual[i], expected.value()[i]), 0)
          << "step " << step << " row " << i;
    }
  }
}

TEST(CatalogLifecycle, DetachingOneViewLeavesTheSharingSiblingUntouched) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto doomed = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m");
  auto survivor = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) WHERE m.length > 0 RETURN u, m");
  ASSERT_TRUE(doomed.ok() && survivor.ok());
  ASSERT_GT(engine.catalog().Stats().shared_nodes, 0u);

  std::vector<Tuple> rows_before = (*survivor)->Snapshot();
  size_t nodes_before = engine.catalog().Stats().total_nodes;
  size_t survivor_bytes = (*survivor)->ApproxMemoryBytes();
  int64_t deltas_before = (*survivor)->network().deltas_processed();

  doomed->reset();  // ~View → catalog refcounted detach

  CatalogStats stats = engine.catalog().Stats();
  EXPECT_EQ(stats.views, 1u);
  EXPECT_LT(stats.total_nodes, nodes_before);
  // No re-prime happened: the survivor's memories and results are the very
  // same objects, not rebuilt copies.
  EXPECT_EQ((*survivor)->network().deltas_processed(), deltas_before);
  EXPECT_EQ((*survivor)->ApproxMemoryBytes(), survivor_bytes);
  std::vector<Tuple> rows_after = (*survivor)->Snapshot();
  ASSERT_EQ(rows_after.size(), rows_before.size());
  for (size_t i = 0; i < rows_after.size(); ++i) {
    ASSERT_EQ(Tuple::Compare(rows_after[i], rows_before[i]), 0);
  }

  // Maintenance continues for the survivor.
  for (int step = 0; step < 15; ++step) {
    generator.ApplyRandomUpdate(&graph);
    auto expected = engine.EvaluateOnce(
        "MATCH (u:Person)-[:LIKES]->(m:Post) WHERE m.length > 0 "
        "RETURN u, m");
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ((*survivor)->Snapshot().size(), expected.value().size())
        << "survivor diverged at step " << step;
  }

  // Re-registering the dropped view reuses the survivor's sub-network
  // again (fingerprint hit) and is immediately correct.
  int64_t hits_before = engine.catalog().Stats().registry_hits;
  auto back = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m");
  ASSERT_TRUE(back.ok());
  EXPECT_GT(engine.catalog().Stats().registry_hits, hits_before);
  EXPECT_GT(engine.catalog().Stats().shared_nodes, 0u);
  auto expected = engine.EvaluateOnce(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*back)->Snapshot().size(), expected.value().size());
}

TEST(CatalogLifecycle, LastViewTearsDownTheSharedNetwork) {
  PropertyGraph graph;
  graph.AddVertex({"A"});
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok());
  ASSERT_NE(engine.catalog().shared_network(), nullptr);
  view->reset();
  EXPECT_EQ(engine.catalog().shared_network(), nullptr);
  EXPECT_EQ(engine.catalog().Stats().total_nodes, 0u);

  // And the catalog accepts registrations again afterwards.
  auto again = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), 1);
}

TEST(CatalogLifecycle, ViewsOutliveTheEngine) {
  PropertyGraph graph;
  graph.AddVertex({"A"});
  std::shared_ptr<View> view;
  {
    QueryEngine engine(&graph);
    auto registered = engine.Register("MATCH (n:A) RETURN n");
    ASSERT_TRUE(registered.ok());
    view = *registered;
  }
  // The view keeps the catalog (and the shared network) alive.
  graph.AddVertex({"A"});
  EXPECT_EQ(view->size(), 2);
}

class RecordingListener : public ViewChangeListener {
 public:
  void OnViewDelta(const Delta& delta) override {
    ++calls;
    entries += static_cast<int64_t>(delta.size());
  }
  int calls = 0;
  int64_t entries = 0;
};

TEST(CatalogLifecycle, RegisteringASiblingEmitsNoSpuriousListenerDeltas) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  (void)a;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok());
  RecordingListener listener;
  (*view)->AddListener(&listener);

  // Registering another view re-primes the shared network; the first
  // view's result did not change, so its listeners must stay silent.
  auto sibling = engine.Register("MATCH (n:A) RETURN n AS m");
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(listener.calls, 0);
  EXPECT_EQ((*view)->size(), 1);

  // Real changes still notify exactly once.
  graph.AddVertex({"A"});
  EXPECT_EQ(listener.calls, 1);
  (*view)->RemoveListener(&listener);
}

TEST(CatalogStatsTest, MarginalMemoryIsBoundedByViewMemory) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto a = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m");
  auto b = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l");
  ASSERT_TRUE(a.ok() && b.ok());
  const ViewCatalog& catalog = engine.catalog();
  size_t marginal = catalog.MarginalMemoryBytes(a->get());
  size_t full = catalog.ViewMemoryBytes(a->get());
  EXPECT_LE(marginal, full);
  // The shared prefix holds real memory, so the marginal slice is a strict
  // subset of the view's footprint.
  EXPECT_LT(marginal, full);
  EXPECT_LE(catalog.Stats().memory_bytes,
            catalog.ViewMemoryBytes(a->get()) +
                catalog.ViewMemoryBytes(b->get()));
}

TEST(CatalogUnshared, DisablingSharingFallsBackToPrivateNetworks) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 15;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph, SharingDisabled());
  auto a = engine.Register("MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m");
  auto b = engine.Register("MATCH (x:Person)-[:LIKES]->(y:Post) RETURN x, y");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(&(*a)->network(), &(*b)->network());
  CatalogStats stats = engine.catalog().Stats();
  EXPECT_EQ(stats.views, 2u);
  EXPECT_EQ(stats.shared_nodes, 0u);
  EXPECT_EQ(stats.registry_hits, 0);
  EXPECT_EQ(stats.total_nodes,
            (*a)->network().node_count() + (*b)->network().node_count());
}

// ---- acceptance: 10 overlapping views, shared vs unshared ------------------

class CatalogAcceptanceTest
    : public ::testing::TestWithParam<PropagationStrategy> {};

TEST_P(CatalogAcceptanceTest, TenOverlappingViewsShareAndStayBitIdentical) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 30;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions shared_options;
  shared_options.network.propagation = GetParam();
  EngineOptions unshared_options = SharingDisabled();
  unshared_options.network.propagation = GetParam();

  QueryEngine shared_engine(&graph, shared_options);
  QueryEngine unshared_engine(&graph, unshared_options);

  std::vector<std::shared_ptr<View>> shared_views;
  std::vector<std::shared_ptr<View>> unshared_views;
  for (const std::string& query : OverlappingSocialViews()) {
    auto s = shared_engine.Register(query);
    ASSERT_TRUE(s.ok()) << query << ": " << s.status();
    shared_views.push_back(*s);
    auto u = unshared_engine.Register(query);
    ASSERT_TRUE(u.ok()) << query << ": " << u.status();
    unshared_views.push_back(*u);
  }

  CatalogStats shared_stats = shared_engine.catalog().Stats();
  CatalogStats unshared_stats = unshared_engine.catalog().Stats();
  ASSERT_EQ(shared_stats.views, 10u);
  // ≥ 30% of the live Rete nodes serve more than one view...
  EXPECT_GE(shared_stats.SharingRatio(), 0.3)
      << shared_stats.ToString();
  // ...the catalog needs strictly fewer nodes than ten private networks...
  EXPECT_LT(shared_stats.total_nodes, unshared_stats.total_nodes);
  // ...and strictly less total node-memory.
  EXPECT_LT(shared_stats.memory_bytes, unshared_stats.memory_bytes)
      << "shared: " << shared_stats.ToString()
      << " unshared: " << unshared_stats.ToString();

  // Differential: shared results stay bit-identical to the per-view
  // networks after every update (both engines listen to the same graph).
  for (int step = 0; step < 30; ++step) {
    if (step % 4 == 3) {
      graph.BeginBatch();
      for (int i = 0; i < 5; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    for (size_t q = 0; q < shared_views.size(); ++q) {
      std::vector<Tuple> shared_rows = shared_views[q]->Snapshot();
      std::vector<Tuple> unshared_rows = unshared_views[q]->Snapshot();
      ASSERT_EQ(shared_rows.size(), unshared_rows.size())
          << OverlappingSocialViews()[q] << " diverged at step " << step;
      for (size_t i = 0; i < shared_rows.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(shared_rows[i], unshared_rows[i]), 0)
            << OverlappingSocialViews()[q] << " step " << step << " row "
            << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, CatalogAcceptanceTest,
                         ::testing::Values(PropagationStrategy::kEager,
                                           PropagationStrategy::kBatched),
                         [](const auto& info) {
                           return std::string(
                               PropagationStrategyName(info.param));
                         });

// The railway (TrainBenchmark) catalog shares its Segment/Sensor prefixes
// the same way — the paper's bench_e3 deployment scenario.
TEST(CatalogSharing, RailwayCatalogSharesAcrossTheFourQueries) {
  PropertyGraph graph;
  RailwayConfig config;
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  for (const std::string& query :
       {RailwayGenerator::PosLengthQuery(),
        RailwayGenerator::SwitchMonitoredQuery(),
        RailwayGenerator::RouteSensorQuery(),
        RailwayGenerator::SwitchSetQuery()}) {
    auto view = engine.Register(query);
    ASSERT_TRUE(view.ok()) << query << ": " << view.status();
    views.push_back(*view);
  }
  CatalogStats stats = engine.catalog().Stats();
  EXPECT_EQ(stats.views, 4u);
  EXPECT_GT(stats.shared_nodes, 0u) << stats.ToString();

  for (int step = 0; step < 20; ++step) {
    generator.ApplyRandomUpdate(&graph);
  }
  for (const auto& view : views) {
    auto expected = engine.EvaluateOnce(view->query());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(view->Snapshot().size(), expected.value().size())
        << view->query();
  }
}

// ---- Snapshot dirty-flag caching -------------------------------------------

TEST(SnapshotCache, UnchangedViewReturnsCachedRowsAndInvalidatesOnChange) {
  PropertyGraph graph;
  graph.AddVertex({"A"});
  graph.AddVertex({"A"});
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok());

  std::vector<Tuple> first = (*view)->Snapshot();
  std::vector<Tuple> second = (*view)->Snapshot();
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(first.size(), second.size());

  graph.AddVertex({"A"});
  std::vector<Tuple> third = (*view)->Snapshot();
  EXPECT_EQ(third.size(), 3u);

  // A flip-flop batch consolidates to nothing: the cache stays valid and
  // the rows stay correct.
  graph.BeginBatch();
  VertexId v = graph.AddVertex({"A"});
  ASSERT_TRUE(graph.RemoveVertex(v).ok());
  graph.CommitBatch();
  EXPECT_EQ((*view)->Snapshot().size(), 3u);
}

TEST(SnapshotCache, SkipLimitViewsStayCorrectAcrossChanges) {
  PropertyGraph graph;
  for (int i = 0; i < 6; ++i) graph.AddVertex({"A"});
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n SKIP 1 LIMIT 3");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->Snapshot().size(), 3u);
  EXPECT_EQ((*view)->Snapshot().size(), 3u);
  graph.AddVertex({"A"});
  EXPECT_EQ((*view)->Snapshot().size(), 3u);
}

}  // namespace
}  // namespace pgivm
