#ifndef PGIVM_RETE_SHARDED_MAP_H_
#define PGIVM_RETE_SHARDED_MAP_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "rete/delta.h"
#include "rete/tuple.h"

namespace pgivm {

/// Number of hash shards a morsel-partitionable node memory is split into.
/// Fixed (rather than equal to the partition count) so the same physical
/// layout serves any partition count up to kMorselShards without
/// resharding: a morsel split into K partitions assigns every shard `s` to
/// partition `s % K`, so two equal keys always land in the same partition
/// and a partition's memory writes never leave its own shards.
inline constexpr uint32_t kMorselShards = 64;

/// Shard owning `hash`. The Fibonacci multiply spreads low-entropy hashes
/// (small integer ids, short key tuples) across the top-6 bits evenly.
inline uint32_t MorselShardOfHash(size_t hash) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(hash) * 0x9E3779B97F4A7C15ull) >> 58);
}

/// Partition (in [0, partitions)) owning `hash` when work is split
/// `partitions` ways. Shard-granular ownership: see kMorselShards.
inline uint32_t MorselPartitionOfHash(size_t hash, uint32_t partitions) {
  return MorselShardOfHash(hash) % partitions;
}

/// A Tuple-keyed hash map split into kMorselShards sub-maps by key hash.
/// Drop-in for the node memories that morsel partitions mutate
/// concurrently: lookups cost one extra index, and partitions touching
/// only keys they own can never share a bucket chain or trigger a rehash
/// visible to another partition.
template <typename V>
class ShardedTupleMap {
 public:
  using Map = std::unordered_map<Tuple, V, TupleHash>;

  Map& shard(const Tuple& key) {
    return shards_[MorselShardOfHash(key.Hash())];
  }
  const Map& shard(const Tuple& key) const {
    return shards_[MorselShardOfHash(key.Hash())];
  }

  /// Pointer to the mapped value, or nullptr when absent.
  V* Find(const Tuple& key) {
    Map& map = shard(key);
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  }
  const V* Find(const Tuple& key) const {
    const Map& map = shard(key);
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  }

  size_t size() const {
    size_t total = 0;
    for (const Map& map : shards_) total += map.size();
    return total;
  }

  void clear() {
    for (Map& map : shards_) map.clear();
  }

  /// Visits every (key, value) pair; shard-major order (not deterministic
  /// across runs — callers needing canonical order sort, as they already
  /// did for a single unordered_map).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Map& map : shards_) {
      for (const auto& [key, value] : map) fn(key, value);
    }
  }

  std::array<Map, kMorselShards>& shards() { return shards_; }
  const std::array<Map, kMorselShards>& shards() const { return shards_; }

 private:
  std::array<Map, kMorselShards> shards_;
};

/// An integer-id-keyed map (graph-source asserted state) split the same
/// way, keyed by the raw id so translation partitions own disjoint entity
/// sets.
template <typename Id, typename V>
class ShardedIdMap {
 public:
  using Map = std::unordered_map<Id, V>;

  static uint32_t ShardOf(Id id) {
    return MorselShardOfHash(static_cast<size_t>(id));
  }

  Map& shard(Id id) { return shards_[ShardOf(id)]; }
  const Map& shard(Id id) const { return shards_[ShardOf(id)]; }

  V* Find(Id id) {
    Map& map = shard(id);
    auto it = map.find(id);
    return it == map.end() ? nullptr : &it->second;
  }
  const V* Find(Id id) const {
    const Map& map = shard(id);
    auto it = map.find(id);
    return it == map.end() ? nullptr : &it->second;
  }

  size_t size() const {
    size_t total = 0;
    for (const Map& map : shards_) total += map.size();
    return total;
  }

  void clear() {
    for (Map& map : shards_) map.clear();
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Map& map : shards_) {
      for (const auto& [id, value] : map) fn(id, value);
    }
  }

  std::array<Map, kMorselShards>& shards() { return shards_; }
  const std::array<Map, kMorselShards>& shards() const { return shards_; }

 private:
  std::array<Map, kMorselShards> shards_;
};

/// DistinctNode's support bag, sharded by tuple hash.
class ShardedBag {
 public:
  Bag& shard(const Tuple& tuple) {
    return shards_[MorselShardOfHash(tuple.Hash())];
  }
  const Bag& shard(const Tuple& tuple) const {
    return shards_[MorselShardOfHash(tuple.Hash())];
  }

  size_t distinct_size() const {
    size_t total = 0;
    for (const Bag& bag : shards_) total += bag.distinct_size();
    return total;
  }

  size_t ApproxMemoryBytes() const {
    size_t total = 0;
    for (const Bag& bag : shards_) total += bag.ApproxMemoryBytes();
    return total;
  }

  void Clear() {
    for (Bag& bag : shards_) bag.Clear();
  }

  std::array<Bag, kMorselShards>& shards() { return shards_; }
  const std::array<Bag, kMorselShards>& shards() const { return shards_; }

 private:
  std::array<Bag, kMorselShards> shards_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_SHARDED_MAP_H_
