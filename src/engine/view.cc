#include "engine/view.h"

#include <algorithm>

namespace pgivm {

View::~View() {
  if (network_) network_->Detach();
}

std::vector<Tuple> View::Snapshot() const {
  std::vector<Tuple> rows = network_->production()->SortedSnapshot();
  if (skip_ > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip_), rows.size());
    rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (limit_ >= 0 && rows.size() > static_cast<size_t>(limit_)) {
    rows.resize(static_cast<size_t>(limit_));
  }
  return rows;
}

}  // namespace pgivm
