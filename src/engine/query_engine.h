#ifndef PGIVM_ENGINE_QUERY_ENGINE_H_
#define PGIVM_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/passes/pass_manager.h"
#include "catalog/view_catalog.h"
#include "engine/view.h"
#include "graph/property_graph.h"
#include "rete/network_builder.h"
#include "support/status.h"

namespace pgivm {

/// Engine-wide configuration: plan lowering and runtime flags. Defaults are
/// the paper's full pipeline; the ablation benchmarks flip individual flags.
struct EngineOptions {
  PlanOptions plan;
  NetworkOptions network;
  CatalogOptions catalog;
};

/// Front door of the library: compiles openCypher queries and keeps their
/// results incrementally maintained against one PropertyGraph.
///
/// Example:
///   PropertyGraph graph;
///   QueryEngine engine(&graph);
///   auto view = engine.Register(
///       "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
///       "WHERE p.lang = c.lang RETURN p, t");
///   ...mutate graph; (*view)->Snapshot() is always current...
///
/// The engine compiles queries and delegates view lifecycle to its
/// ViewCatalog: with operator-state sharing enabled (the default) all
/// registered views live inside one shared Rete network whose structurally
/// identical sub-plans are instantiated once; with sharing disabled each
/// View owns a private network (the seed behaviour). Views keep the catalog
/// alive, so they outlive the engine safely.
class QueryEngine {
 public:
  explicit QueryEngine(PropertyGraph* graph, EngineOptions options = {})
      : graph_(graph),
        options_(std::move(options)),
        catalog_(ViewCatalog::Create(graph, options_.network,
                                     options_.catalog)) {}

  /// Compiles `cypher` through the paper's pipeline (parse → GRA → NRA →
  /// FRA → Rete) and attaches the resulting view to the graph, priming it
  /// with the current graph content. `$name` parameters are substituted
  /// from `parameters` at compile time (a view is specific to one binding).
  Result<std::shared_ptr<View>> Register(std::string_view cypher,
                                         const ValueMap& parameters = {});

  /// One-shot, non-incremental evaluation (the baseline strategy): compiles
  /// the same plan and interprets it against the current graph. Returns
  /// sorted rows with SKIP/LIMIT applied.
  Result<std::vector<Tuple>> EvaluateOnce(
      std::string_view cypher, const ValueMap& parameters = {}) const;

  /// Compiles without instantiating a network; returns the FRA plan (for
  /// plan inspection, tests and the baseline benchmarks).
  Result<OpPtr> Compile(std::string_view cypher,
                        const ValueMap& parameters = {}) const;

  /// Human-readable compilation report: the GRA tree (paper step 1) and the
  /// lowered FRA plan (steps 2–3) side by side.
  Result<std::string> Explain(std::string_view cypher,
                              const ValueMap& parameters = {}) const;

  PropertyGraph* graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The view catalog: registered-view bookkeeping, node-sharing registry
  /// statistics and per-view memory attribution.
  ViewCatalog& catalog() { return *catalog_; }
  const ViewCatalog& catalog() const { return *catalog_; }

 private:
  PropertyGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<ViewCatalog> catalog_;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_QUERY_ENGINE_H_
