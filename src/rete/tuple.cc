#include "rete/tuple.h"

#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

size_t HashValues(const std::vector<Value>& values) {
  size_t seed = 0x74757065;  // "tupe"
  for (const Value& v : values) HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace

Tuple::Tuple(std::vector<Value> values)
    : values_(std::make_shared<const std::vector<Value>>(std::move(values))),
      hash_(HashValues(*values_)) {}

Tuple Tuple::Project(const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(at(static_cast<size_t>(i)));
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& suffix) const {
  std::vector<Value> out = *values_;
  out.insert(out.end(), suffix.values_->begin(), suffix.values_->end());
  return Tuple(std::move(out));
}

Tuple Tuple::Append(Value v) const {
  std::vector<Value> out = *values_;
  out.push_back(std::move(v));
  return Tuple(std::move(out));
}

Tuple Tuple::WithColumn(size_t i, Value v) const {
  std::vector<Value> out = *values_;
  out[i] = std::move(v);
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << at(i).ToString();
  }
  os << ")";
  return os.str();
}

int Tuple::Compare(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a.at(i), b.at(i));
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace pgivm
