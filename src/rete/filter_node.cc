#include "rete/filter_node.h"

#include "support/string_util.h"

namespace pgivm {

void FilterNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  for (const DeltaEntry& entry : delta) {
    if (IsTrue(predicate_.Eval(entry.tuple))) out.push_back(entry);
  }
  Emit(std::move(out));
}

std::string FilterNode::DebugString() const {
  return StrCat("Filter[", predicate_.expr()->ToString(), "]");
}

}  // namespace pgivm
