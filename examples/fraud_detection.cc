// Financial fraud detection — one of the paper's motivating low-latency
// use cases (§1). Transactions stream into the graph; standing views flag
// suspicious structures the moment they appear:
//
//  * circular money flow: a transfer chain of 2..4 hops returning to its
//    origin account;
//  * smurfing: an account receiving many small transfers that sum above a
//    reporting threshold;
//  * flagged-counterparty contact: transfers touching blacklisted accounts.

#include <iostream>

#include "engine/query_engine.h"
#include "support/rng.h"

int main() {
  using namespace pgivm;

  PropertyGraph graph;
  QueryEngine engine(&graph);

  // Standing fraud views. They are registered before any data arrives —
  // IVM keeps them current on every committed transaction batch.
  auto cycles = engine
                    .Register(
                        "MATCH (a:Account)-[:XFER*2..4]->(a) "
                        "RETURN DISTINCT a")
                    .value();
  auto smurfing = engine
                      .Register(
                          "MATCH (src:Account)-[t:XFER]->(dst:Account) "
                          "WHERE t.amount < 1000 "
                          "WITH dst, count(*) AS small_in, "
                          "     sum(t.amount) AS total "
                          "WHERE small_in >= 3 AND total >= 2500 "
                          "RETURN dst, small_in, total")
                      .value();
  auto flagged = engine
                     .Register(
                         "MATCH (a:Account)-[t:XFER]->(b:Account) "
                         "WHERE b.flagged = true "
                         "RETURN a, b, t.amount AS amount")
                     .value();

  // Accounts.
  Rng rng(2026);
  std::vector<VertexId> accounts;
  graph.BeginBatch();
  for (int i = 0; i < 40; ++i) {
    accounts.push_back(graph.AddVertex(
        {"Account"}, {{"iban", Value::String("ACC" + std::to_string(i))},
                      {"flagged", Value::Bool(i == 13)}}));
  }
  graph.CommitBatch();

  auto transfer = [&](VertexId src, VertexId dst, int64_t amount) {
    (void)graph.AddEdge(src, dst, "XFER", {{"amount", Value::Int(amount)}})
        .value();
  };

  // Normal traffic.
  graph.BeginBatch();
  for (int i = 0; i < 120; ++i) {
    VertexId src = accounts[rng.NextBelow(accounts.size())];
    VertexId dst = accounts[rng.NextBelow(accounts.size())];
    if (src != dst) transfer(src, dst, rng.NextInRange(1500, 90000));
  }
  graph.CommitBatch();
  std::cout << "After normal traffic: cycles=" << cycles->size()
            << " smurfing=" << smurfing->size()
            << " flagged-contacts=" << flagged->size() << "\n";

  // A laundering ring: 0 -> 7 -> 21 -> 0.
  graph.BeginBatch();
  transfer(accounts[0], accounts[7], 50000);
  transfer(accounts[7], accounts[21], 49000);
  transfer(accounts[21], accounts[0], 48500);
  graph.CommitBatch();
  std::cout << "After the ring closes: cycle alerts on "
            << cycles->size() << " account(s):\n";
  for (const Tuple& row : cycles->Snapshot()) {
    std::cout << "  account " << row.at(0).ToString() << "\n";
  }

  // Smurfing: many small transfers into account 5.
  graph.BeginBatch();
  for (int i = 0; i < 4; ++i) {
    transfer(accounts[10 + i], accounts[5], 900);
  }
  graph.CommitBatch();
  std::cout << "Smurfing alerts:\n";
  for (const Tuple& row : smurfing->Snapshot()) {
    std::cout << "  dst=" << row.at(0).ToString()
              << " small_transfers=" << row.at(1).ToString()
              << " total=" << row.at(2).ToString() << "\n";
  }

  // Contact with the blacklisted account 13.
  graph.BeginBatch();
  transfer(accounts[2], accounts[13], 7000);
  graph.CommitBatch();
  std::cout << "Flagged-counterparty alerts: " << flagged->size() << "\n";
  for (const Tuple& row : flagged->Snapshot()) {
    std::cout << "  " << row.ToString() << "\n";
  }
  return 0;
}
