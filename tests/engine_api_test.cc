// Engine API conveniences: $parameters, Explain, and plan introspection.

#include <gtest/gtest.h>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

TEST(ParameterTest, SubstitutedInWhere) {
  PropertyGraph graph;
  graph.AddVertex({"P"}, {{"age", Value::Int(20)}});
  graph.AddVertex({"P"}, {{"age", Value::Int(40)}});
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (n:P) WHERE n.age >= $min RETURN n",
                            {{"min", Value::Int(30)}})
                  .value();
  EXPECT_EQ(view->size(), 1);
}

TEST(ParameterTest, SubstitutedInPropertyPattern) {
  PropertyGraph graph;
  graph.AddVertex({"P"}, {{"name", Value::String("ada")}});
  graph.AddVertex({"P"}, {{"name", Value::String("bob")}});
  QueryEngine engine(&graph);
  Result<std::vector<Tuple>> rows =
      engine.EvaluateOnce("MATCH (n:P {name: $who}) RETURN n",
                          {{"who", Value::String("ada")}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows.value().size(), 1u);
}

TEST(ParameterTest, SubstitutedInReturnAndUnwind) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  Result<std::vector<Tuple>> rows = engine.EvaluateOnce(
      "UNWIND $values AS v RETURN v + $offset AS out",
      {{"values", Value::List({Value::Int(1), Value::Int(2)})},
       {"offset", Value::Int(10)}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].at(0), Value::Int(11));
  EXPECT_EQ(rows.value()[1].at(0), Value::Int(12));
}

TEST(ParameterTest, MissingParameterRejected) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  Result<std::shared_ptr<View>> view =
      engine.Register("MATCH (n:P) WHERE n.age > $min RETURN n");
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("$min"), std::string::npos);
}

TEST(ParameterTest, DifferentBindingsGiveIndependentViews) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto young = engine
                   .Register("MATCH (n:P) WHERE n.age < $cut RETURN n",
                             {{"cut", Value::Int(30)}})
                   .value();
  auto old = engine
                 .Register("MATCH (n:P) WHERE n.age < $cut RETURN n",
                           {{"cut", Value::Int(100)}})
                 .value();
  graph.AddVertex({"P"}, {{"age", Value::Int(50)}});
  EXPECT_EQ(young->size(), 0);
  EXPECT_EQ(old->size(), 1);
}

TEST(ParameterTest, DollarWithoutNameIsLexError) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine.Register("RETURN $ AS x").ok());
}

TEST(ExplainTest, ShowsBothPlanStages) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  Result<std::string> report = engine.Explain(
      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, t");
  ASSERT_TRUE(report.ok()) << report.status();
  // The GRA stage still shows the expand-out operator...
  EXPECT_NE(report->find("GRA (paper step 1):"), std::string::npos);
  EXPECT_NE(report->find("PathJoin"), std::string::npos);
  // ...the FRA stage shows the pushed-down property extracts.
  EXPECT_NE(report->find("FRA (after steps 2-3):"), std::string::npos);
  EXPECT_NE(report->find("lang -> #p.lang"), std::string::npos);
}

TEST(ExplainTest, PropagatesCompileErrors) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine.Explain("MATCH (n:A) RETURN zz").ok());
}

TEST(ViewIntrospectionTest, PlansAndQueryAccessible) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n").value();
  EXPECT_EQ(view->query(), "MATCH (n:A) RETURN n");
  EXPECT_EQ(view->gra_plan()->kind, OpKind::kProduce);
  EXPECT_EQ(view->fra_plan()->kind, OpKind::kProduce);
  EXPECT_EQ(view->column_names(), std::vector<std::string>{"n"});
}

}  // namespace
}  // namespace pgivm
