// E2 — incremental view maintenance vs. full re-evaluation (the paper's
// core motivating claim, on the Train-Benchmark-style workload it cites).
//
// For model sizes from small to large, we measure the cost of keeping the
// four well-formedness constraints current across one random repair/break
// operation:
//   * IVM:    apply the update; registered views absorb the delta.
//   * ReEval: apply the update; re-run all four queries from scratch.
// Expected shape: IVM latency is roughly flat in model size, re-evaluation
// grows linearly — the gap widens with scale.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "baseline/baseline_evaluator.h"
#include "engine/query_engine.h"
#include "workload/railway.h"

namespace pgivm {
namespace {

std::vector<std::string> ConstraintQueries() {
  return {
      RailwayGenerator::PosLengthQuery(),
      RailwayGenerator::SwitchMonitoredQuery(),
      RailwayGenerator::RouteSensorQuery(),
      RailwayGenerator::SwitchSetQuery(),
  };
}

void BM_E2_IVM(benchmark::State& state) {
  PropertyGraph graph;
  RailwayConfig config;
  config.routes = state.range(0);
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  int64_t violations = 0;
  for (const std::string& query : ConstraintQueries()) {
    views.push_back(engine.Register(query).value());
  }
  for (auto _ : state) {
    generator.ApplyRandomUpdate(&graph);
    for (const auto& view : views) violations += view->size();
  }
  benchmark::DoNotOptimize(violations);
  state.counters["elements"] =
      static_cast<double>(graph.vertex_count() + graph.edge_count());
}
BENCHMARK(BM_E2_IVM)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Iterations(200);

void BM_E2_ReEval(benchmark::State& state) {
  PropertyGraph graph;
  RailwayConfig config;
  config.routes = state.range(0);
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<OpPtr> plans;
  for (const std::string& query : ConstraintQueries()) {
    plans.push_back(engine.Compile(query).value());
  }
  BaselineEvaluator evaluator(&graph);
  int64_t violations = 0;
  for (auto _ : state) {
    generator.ApplyRandomUpdate(&graph);
    for (const OpPtr& plan : plans) {
      Result<Bag> result = evaluator.Evaluate(plan);
      violations += result.value().total_count();
    }
  }
  benchmark::DoNotOptimize(violations);
  state.counters["elements"] =
      static_cast<double>(graph.vertex_count() + graph.edge_count());
}
BENCHMARK(BM_E2_ReEval)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Iterations(200);

// ---- batch-size sweep: eager vs batched propagation ------------------------
//
// Same four standing constraints, but updates arrive in BeginBatch/
// CommitBatch bursts of range(0) changes; range(1) selects the propagation
// strategy (0 = eager, 1 = batched). Eager unrolls each burst into
// per-change cascades; batched translates the whole burst once and drains
// the networks level by level with consolidation. The `emitted_per_batch`
// counter is the resulting propagation volume (TotalEmittedEntries delta),
// the FGN papers' cost metric.

void BM_E2_BatchSweep(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  PropagationStrategy strategy = state.range(1) == 0
                                     ? PropagationStrategy::kEager
                                     : PropagationStrategy::kBatched;

  PropertyGraph graph;
  RailwayConfig config;
  config.routes = 64;
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.network.propagation = strategy;
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  for (const std::string& query : ConstraintQueries()) {
    views.push_back(engine.Register(query).value());
  }

  auto total_emitted = [&views] {
    int64_t total = 0;
    for (const auto& view : views) {
      total += view->network().TotalEmittedEntries();
    }
    return total;
  };

  int64_t emitted_before = total_emitted();
  int64_t violations = 0;
  for (auto _ : state) {
    graph.BeginBatch();
    for (int64_t i = 0; i < batch_size; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
    for (const auto& view : views) violations += view->size();
  }
  benchmark::DoNotOptimize(violations);

  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["emitted_per_batch"] =
      static_cast<double>(total_emitted() - emitted_before) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.SetLabel(PropagationStrategyName(strategy));
}
BENCHMARK(BM_E2_BatchSweep)
    ->ArgsProduct({{1, 10, 100, 1000}, {0, 1}})
    ->Iterations(20);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
