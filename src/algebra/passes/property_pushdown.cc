#include <unordered_map>
#include <unordered_set>

#include "algebra/passes/pass_manager.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

/// Where a column's graph element is defined: the ◯/⇑ leaf and the leaf
/// column that binds it.
struct Origin {
  LogicalOp* leaf = nullptr;
  std::string var;
};

using OriginMap = std::unordered_map<std::string, Origin>;

bool IsLeaf(OpKind kind) {
  return kind == OpKind::kGetVertices || kind == OpKind::kGetEdges;
}

/// One property/metadata access found in an operator's expressions.
struct Access {
  PropertyExtract::What what;
  std::string var;
  std::string key;  // kProperty only

  bool operator==(const Access& other) const {
    return what == other.what && var == other.var && key == other.key;
  }
};

struct AccessHash {
  size_t operator()(const Access& a) const {
    size_t seed = static_cast<size_t>(a.what);
    HashCombine(seed, std::hash<std::string>{}(a.var));
    HashCombine(seed, std::hash<std::string>{}(a.key));
    return seed;
  }
};

std::string ExtractColumnName(const Access& access) {
  switch (access.what) {
    case PropertyExtract::What::kProperty:
      return StrCat("#", access.var, ".", access.key);
    case PropertyExtract::What::kLabels:
      return StrCat("#labels(", access.var, ")");
    case PropertyExtract::What::kType:
      return StrCat("#type(", access.var, ")");
    case PropertyExtract::What::kPropertyMap:
      return StrCat("#props(", access.var, ")");
  }
  return "#?";
}

class PushdownPass {
 public:
  explicit PushdownPass(bool naive) : naive_(naive) {}

  Status Run(const OpPtr& root) {
    PGIVM_RETURN_IF_ERROR(Walk(root));
    return ComputeSchemas(root);
  }

 private:
  /// Computes which output columns of `op` are leaf-bound graph elements.
  OriginMap Origins(const OpPtr& op) {
    OriginMap map;
    switch (op->kind) {
      case OpKind::kGetVertices:
        map[op->vertex_var] = {op.get(), op->vertex_var};
        break;
      case OpKind::kGetEdges:
        map[op->src_var] = {op.get(), op->src_var};
        map[op->edge_var] = {op.get(), op->edge_var};
        map[op->dst_var] = {op.get(), op->dst_var};
        break;
      case OpKind::kJoin:
      case OpKind::kLeftOuterJoin: {
        OriginMap left = Origins(op->children[0]);
        OriginMap right = Origins(op->children[1]);
        map = std::move(left);
        for (auto& [name, origin] : right) {
          auto it = map.find(name);
          // Prefer get-vertices leaves: their input nodes react to vertex
          // updates directly instead of via incident-edge lookups.
          if (it == map.end() ||
              (it->second.leaf->kind != OpKind::kGetVertices &&
               origin.leaf->kind == OpKind::kGetVertices)) {
            map[name] = origin;
          }
        }
        break;
      }
      case OpKind::kAntiJoin:
      case OpKind::kSemiJoin:
      case OpKind::kSelection:
      case OpKind::kDistinct:
      case OpKind::kUnnest:
      case OpKind::kPathJoin:
        map = Origins(op->children[0]);
        break;
      case OpKind::kProjection:
      case OpKind::kProduce: {
        OriginMap child = Origins(op->children[0]);
        for (const auto& [name, expr] : op->projections) {
          if (expr->kind == ExprKind::kVariable) {
            auto it = child.find(expr->name);
            if (it != child.end()) map[name] = it->second;
          }
        }
        break;
      }
      case OpKind::kAggregate: {
        OriginMap child = Origins(op->children[0]);
        for (const auto& [name, expr] : op->group_by) {
          if (expr->kind == ExprKind::kVariable) {
            auto it = child.find(expr->name);
            if (it != child.end()) map[name] = it->second;
          }
        }
        break;
      }
      case OpKind::kUnit:
      case OpKind::kUnion:
      case OpKind::kExpand:
        break;
    }
    return map;
  }

  /// Makes `col` (already extracted at some leaf under `op`) visible in
  /// `op`'s output, inserting pass-through items into projections and
  /// aggregates on the way. Mutation happens only on successful paths —
  /// pass-through columns are functionally dependent on their element, so
  /// inserting them through Distinct/Aggregate scopes preserves semantics.
  bool Provide(const OpPtr& op, const std::string& col) {
    switch (op->kind) {
      case OpKind::kGetVertices:
        if (op->vertex_var == col) return true;
        break;
      case OpKind::kGetEdges:
        if (op->src_var == col || op->edge_var == col || op->dst_var == col) {
          return true;
        }
        break;
      case OpKind::kUnit:
      case OpKind::kExpand:
        return false;
      case OpKind::kJoin:
      case OpKind::kLeftOuterJoin:
        return Provide(op->children[0], col) || Provide(op->children[1], col);
      case OpKind::kAntiJoin:
      case OpKind::kSemiJoin:
      case OpKind::kSelection:
      case OpKind::kDistinct:
        return Provide(op->children[0], col);
      case OpKind::kUnnest:
        if (op->unnest_alias == col) return true;
        return Provide(op->children[0], col);
      case OpKind::kPathJoin:
        if (op->dst_var == col || op->path_var == col) return true;
        return Provide(op->children[0], col);
      case OpKind::kUnion:
        return Provide(op->children[0], col) && Provide(op->children[1], col);
      case OpKind::kProjection:
      case OpKind::kProduce:
        for (const auto& [name, expr] : op->projections) {
          if (name == col) return true;
        }
        if (Provide(op->children[0], col)) {
          op->projections.emplace_back(col, MakeVariable(col));
          return true;
        }
        return false;
      case OpKind::kAggregate:
        for (const auto& [name, expr] : op->group_by) {
          if (name == col) return true;
        }
        for (const auto& [name, expr] : op->aggregates) {
          if (name == col) return true;
        }
        if (Provide(op->children[0], col)) {
          op->group_by.emplace_back(col, MakeVariable(col));
          return true;
        }
        return false;
    }
    if (IsLeaf(op->kind)) {
      for (const PropertyExtract& extract : op->extracts) {
        if (extract.column_name == col) return true;
      }
    }
    return false;
  }

  /// Adds (or finds) the extract for `access` on `leaf`; returns its column.
  std::string AddExtract(LogicalOp* leaf, const Access& access) {
    Access effective = access;
    if (naive_ && access.what == PropertyExtract::What::kProperty) {
      // Ablation: no schema inference — ship the whole property map.
      effective = {PropertyExtract::What::kPropertyMap, access.var, ""};
    }
    std::string col = ExtractColumnName(effective);
    for (const PropertyExtract& existing : leaf->extracts) {
      if (existing.column_name == col) return col;
    }
    PropertyExtract extract;
    extract.what = effective.what;
    extract.element_var = effective.var;
    extract.key = effective.key;
    extract.column_name = col;
    leaf->extracts.push_back(std::move(extract));
    return col;
  }

  /// Scans one expression tree for pushable accesses against `scope`.
  /// `shadowed` holds comprehension-local names: accesses through them
  /// refer to runtime values, never to pattern elements.
  void ScanExpr(const ExprPtr& expr, const OpPtr& scope,
                const OriginMap& origins,
                std::unordered_set<Access, AccessHash>& found,
                std::vector<std::string>& shadowed) {
    if (expr->kind == ExprKind::kComprehension) {
      ScanExpr(expr->children[0], scope, origins, found, shadowed);
      shadowed.push_back(expr->name);
      ScanExpr(expr->children[1], scope, origins, found, shadowed);
      ScanExpr(expr->children[2], scope, origins, found, shadowed);
      shadowed.pop_back();
      return;
    }
    auto is_shadowed = [&shadowed](const std::string& var) {
      for (const std::string& name : shadowed) {
        if (name == var) return true;
      }
      return false;
    };
    if (expr->kind == ExprKind::kProperty &&
        expr->children[0]->kind == ExprKind::kVariable &&
        !is_shadowed(expr->children[0]->name)) {
      const std::string& var = expr->children[0]->name;
      int idx = scope->schema.IndexOf(var);
      if (idx >= 0) {
        Attribute::Kind kind = scope->schema.at(static_cast<size_t>(idx)).kind;
        if (kind == Attribute::Kind::kVertex ||
            kind == Attribute::Kind::kEdge) {
          found.insert({PropertyExtract::What::kProperty, var, expr->name});
        }
      }
    } else if (expr->kind == ExprKind::kFunctionCall &&
               expr->children.size() == 1 &&
               expr->children[0]->kind == ExprKind::kVariable &&
               !is_shadowed(expr->children[0]->name)) {
      const std::string& var = expr->children[0]->name;
      int idx = scope->schema.IndexOf(var);
      if (idx >= 0) {
        Attribute::Kind kind = scope->schema.at(static_cast<size_t>(idx)).kind;
        bool is_vertex = kind == Attribute::Kind::kVertex;
        bool is_edge = kind == Attribute::Kind::kEdge;
        if (expr->name == "labels" && is_vertex) {
          found.insert({PropertyExtract::What::kLabels, var, ""});
        } else if (expr->name == "type" && is_edge) {
          found.insert({PropertyExtract::What::kType, var, ""});
        } else if (expr->name == "properties" && (is_vertex || is_edge)) {
          found.insert({PropertyExtract::What::kPropertyMap, var, ""});
        }
      }
    }
    for (const ExprPtr& child : expr->children) {
      ScanExpr(child, scope, origins, found, shadowed);
    }
    (void)origins;
  }

  /// Rewrites accesses to their extracted columns, honoring comprehension
  /// shadowing like ScanExpr.
  ExprPtr RewriteExpr(const ExprPtr& expr,
                      const std::unordered_map<std::string, std::string>&
                          replacement,
                      std::vector<std::string>& shadowed) {
    if (expr->kind == ExprKind::kComprehension) {
      auto copy = std::make_shared<Expression>(*expr);
      copy->children[0] = RewriteExpr(expr->children[0], replacement,
                                      shadowed);
      shadowed.push_back(expr->name);
      copy->children[1] = RewriteExpr(expr->children[1], replacement,
                                      shadowed);
      copy->children[2] = RewriteExpr(expr->children[2], replacement,
                                      shadowed);
      shadowed.pop_back();
      return copy;
    }
    auto is_shadowed = [&shadowed](const std::string& var) {
      for (const std::string& name : shadowed) {
        if (name == var) return true;
      }
      return false;
    };
    auto make_key = [](const Access& a) { return ExtractColumnName(a); };
    if (expr->kind == ExprKind::kProperty &&
        expr->children[0]->kind == ExprKind::kVariable &&
        !is_shadowed(expr->children[0]->name)) {
      Access access{PropertyExtract::What::kProperty,
                    expr->children[0]->name, expr->name};
      auto it = replacement.find(make_key(access));
      if (it != replacement.end()) {
        if (naive_) {
          // Map lookup on the full property-map column.
          return MakeProperty(MakeVariable(it->second), expr->name);
        }
        return MakeVariable(it->second);
      }
    } else if (expr->kind == ExprKind::kFunctionCall &&
               expr->children.size() == 1 &&
               expr->children[0]->kind == ExprKind::kVariable &&
               !is_shadowed(expr->children[0]->name)) {
      PropertyExtract::What what = PropertyExtract::What::kProperty;
      bool known = true;
      if (expr->name == "labels") {
        what = PropertyExtract::What::kLabels;
      } else if (expr->name == "type") {
        what = PropertyExtract::What::kType;
      } else if (expr->name == "properties") {
        what = PropertyExtract::What::kPropertyMap;
      } else {
        known = false;
      }
      if (known) {
        Access access{what, expr->children[0]->name, ""};
        auto it = replacement.find(make_key(access));
        if (it != replacement.end()) return MakeVariable(it->second);
      }
    }
    if (expr->children.empty()) return expr;
    auto copy = std::make_shared<Expression>(*expr);
    bool changed = false;
    for (size_t i = 0; i < expr->children.size(); ++i) {
      copy->children[i] = RewriteExpr(expr->children[i], replacement,
                                      shadowed);
      changed |= copy->children[i] != expr->children[i];
    }
    return changed ? ExprPtr(copy) : expr;
  }

  /// Processes one operator: resolve each access found in its expressions to
  /// a leaf extract (inserting a dynamic ◯/⇑ join for runtime-only
  /// elements), make the column visible, and rewrite the expressions.
  Status ProcessOp(const OpPtr& op) {
    bool has_exprs = op->kind == OpKind::kSelection ||
                     op->kind == OpKind::kProjection ||
                     op->kind == OpKind::kProduce ||
                     op->kind == OpKind::kAggregate ||
                     op->kind == OpKind::kUnnest;
    if (!has_exprs) return Status::Ok();

    OpPtr& scope = op->children[0];
    OriginMap origins = Origins(scope);

    std::unordered_set<Access, AccessHash> accesses;
    std::vector<std::string> shadowed;
    auto scan_all = [&]() {
      accesses.clear();
      if (op->predicate) {
        ScanExpr(op->predicate, scope, origins, accesses, shadowed);
      }
      for (const auto& [name, expr] : op->projections) {
        ScanExpr(expr, scope, origins, accesses, shadowed);
      }
      for (const auto& [name, expr] : op->group_by) {
        ScanExpr(expr, scope, origins, accesses, shadowed);
      }
      for (const auto& [name, expr] : op->aggregates) {
        ScanExpr(expr, scope, origins, accesses, shadowed);
      }
      if (op->unnest_expr) {
        ScanExpr(op->unnest_expr, scope, origins, accesses, shadowed);
      }
    };
    scan_all();
    if (accesses.empty()) return Status::Ok();

    // Elements with no defining leaf (e.g. vertices unnested from a path)
    // get a fresh leaf joined in, keyed by the element column itself.
    bool inserted_leaf = false;
    for (const Access& access : accesses) {
      if (origins.count(access.var) > 0) continue;
      int idx = scope->schema.IndexOf(access.var);
      if (idx < 0) continue;  // Not a column; left for runtime evaluation.
      Attribute::Kind kind = scope->schema.at(static_cast<size_t>(idx)).kind;
      OpPtr leaf;
      if (kind == Attribute::Kind::kVertex) {
        leaf = MakeOp(OpKind::kGetVertices);
        leaf->vertex_var = access.var;
      } else if (kind == Attribute::Kind::kEdge) {
        leaf = MakeOp(OpKind::kGetEdges);
        leaf->edge_var = access.var;
        leaf->src_var = StrCat("#src(", access.var, ")");
        leaf->dst_var = StrCat("#dst(", access.var, ")");
        leaf->direction = EdgeDirection::kOut;
      } else {
        continue;
      }
      scope = MakeOp(OpKind::kJoin, {scope, std::move(leaf)});
      inserted_leaf = true;
    }
    if (inserted_leaf) {
      PGIVM_RETURN_IF_ERROR(ComputeSchemas(scope));
      origins = Origins(scope);
      scan_all();
    }

    // Resolve every access: extract at the defining leaf, thread the column
    // up to this operator's input.
    std::unordered_map<std::string, std::string> replacement;
    for (const Access& access : accesses) {
      auto it = origins.find(access.var);
      if (it == origins.end()) continue;
      Access leaf_access = access;
      leaf_access.var = it->second.var;
      std::string col = AddExtract(it->second.leaf, leaf_access);
      if (!Provide(scope, col)) {
        return Status::Internal(
            StrCat("pushdown could not thread column '", col,
                   "' to operator ", op->DebugString()));
      }
      // The rewrite is keyed by the access as written (original var name).
      Access naive_adjusted = access;
      if (naive_ && access.what == PropertyExtract::What::kProperty) {
        // Rewrite map stores the map column under the original access name.
        replacement[ExtractColumnName(access)] = col;
        continue;
      }
      (void)naive_adjusted;
      replacement[ExtractColumnName(access)] = col;
    }

    if (op->predicate) {
      op->predicate = RewriteExpr(op->predicate, replacement, shadowed);
    }
    for (auto& [name, expr] : op->projections) {
      expr = RewriteExpr(expr, replacement, shadowed);
    }
    for (auto& [name, expr] : op->group_by) {
      expr = RewriteExpr(expr, replacement, shadowed);
    }
    for (auto& [name, expr] : op->aggregates) {
      expr = RewriteExpr(expr, replacement, shadowed);
    }
    if (op->unnest_expr) {
      op->unnest_expr = RewriteExpr(op->unnest_expr, replacement, shadowed);
    }

    // Schemas above the mutated leaves are stale; recompute this subtree so
    // parents see fresh columns.
    return ComputeSchemas(op);
  }

  Status Walk(const OpPtr& op) {
    for (const OpPtr& child : op->children) PGIVM_RETURN_IF_ERROR(Walk(child));
    return ProcessOp(op);
  }

  bool naive_;
};

}  // namespace

Status PushDownProperties(OpPtr& root, bool naive) {
  return PushdownPass(naive).Run(root);
}

}  // namespace pgivm
