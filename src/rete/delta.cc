#include "rete/delta.h"

#include <cassert>
#include <sstream>

namespace pgivm {

Delta Normalize(const Delta& delta) {
  std::unordered_map<Tuple, int64_t, TupleHash> net;
  std::vector<Tuple> order;
  for (const DeltaEntry& entry : delta) {
    auto [it, inserted] = net.emplace(entry.tuple, 0);
    if (inserted) order.push_back(entry.tuple);
    it->second += entry.multiplicity;
  }
  Delta out;
  out.reserve(order.size());
  for (const Tuple& tuple : order) {
    int64_t m = net[tuple];
    if (m != 0) out.push_back({tuple, m});
  }
  return out;
}

std::string DeltaToString(const Delta& delta) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < delta.size(); ++i) {
    if (i > 0) os << ", ";
    os << (delta[i].multiplicity > 0 ? "+" : "") << delta[i].multiplicity
       << "x" << delta[i].tuple.ToString();
  }
  os << "}";
  return os.str();
}

std::pair<int64_t, int64_t> Bag::Apply(const Tuple& tuple,
                                       int64_t multiplicity) {
  auto it = counts_.find(tuple);
  int64_t old_count = it == counts_.end() ? 0 : it->second;
  int64_t new_count = old_count + multiplicity;
  assert(new_count >= 0 && "bag count went negative: upstream emitted a "
                           "retraction for a tuple it never asserted");
  total_ += multiplicity;
  if (new_count == 0) {
    if (it != counts_.end()) counts_.erase(it);
  } else if (it == counts_.end()) {
    counts_.emplace(tuple, new_count);
  } else {
    it->second = new_count;
  }
  return {old_count, new_count};
}

int64_t Bag::Count(const Tuple& tuple) const {
  auto it = counts_.find(tuple);
  return it == counts_.end() ? 0 : it->second;
}

size_t Bag::ApproxMemoryBytes() const {
  size_t bytes = counts_.bucket_count() * sizeof(void*);
  for (const auto& [tuple, count] : counts_) {
    bytes += sizeof(Tuple) + sizeof(int64_t);
    for (const Value& v : tuple.values()) bytes += v.ApproxMemoryBytes();
    (void)count;
  }
  return bytes;
}

}  // namespace pgivm
