// E1 — the paper's §2 running example, maintained under churn.
//
// Verifies the result table {(1,[1,2]), (1,[1,2,3])} once at startup (the
// paper's only concrete result artifact), then measures the per-update
// maintenance latency of the running-example view under the three update
// kinds discussed in the paper: reply insertion/deletion (atomic path
// churn), language flips (property churn), and thread growth.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kQuery[] =
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
    "WHERE p.lang = c.lang RETURN p, t";

struct ExampleFixture {
  ExampleFixture() : engine(&graph) {
    post = graph.AddVertex({"Post"}, {{"lang", Value::String("en")}});
    comm2 = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    comm3 = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    (void)graph.AddEdge(post, comm2, "REPLY").value();
    (void)graph.AddEdge(comm2, comm3, "REPLY").value();
    view = engine.Register(kQuery).value();
  }

  PropertyGraph graph;
  QueryEngine engine;
  VertexId post, comm2, comm3;
  std::shared_ptr<View> view;
};

void VerifyPaperTableOnce() {
  static bool done = false;
  if (done) return;
  done = true;
  ExampleFixture f;
  std::vector<Tuple> rows = f.view->Snapshot();
  std::printf("E1 check: paper result table has %zu rows (expect 2): %s\n",
              rows.size(), rows.size() == 2 ? "OK" : "MISMATCH");
  for (const Tuple& row : rows) {
    std::printf("  p=%s t=%s\n", row.at(0).ToString().c_str(),
                row.at(1).ToString().c_str());
  }
}

void BM_E1_ReplyEdgeChurn(benchmark::State& state) {
  VerifyPaperTableOnce();
  ExampleFixture f;
  VertexId comm4 =
      f.graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  for (auto _ : state) {
    EdgeId e = f.graph.AddEdge(f.comm3, comm4, "REPLY").value();
    (void)f.graph.RemoveEdge(e);
  }
  state.counters["rows"] =
      static_cast<double>(f.view->size());
}
BENCHMARK(BM_E1_ReplyEdgeChurn)->Iterations(2000);

void BM_E1_LanguageFlip(benchmark::State& state) {
  ExampleFixture f;
  bool en = true;
  for (auto _ : state) {
    en = !en;
    (void)f.graph.SetVertexProperty(
        f.comm3, "lang", Value::String(en ? "en" : "de"));
  }
}
BENCHMARK(BM_E1_LanguageFlip)->Iterations(2000);

void BM_E1_ThreadGrowth(benchmark::State& state) {
  // Cost of appending one reply at the tail of a growing thread.
  ExampleFixture f;
  VertexId tail = f.comm3;
  for (auto _ : state) {
    VertexId next =
        f.graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    (void)f.graph.AddEdge(tail, next, "REPLY").value();
    tail = next;
  }
  state.counters["final_rows"] = static_cast<double>(f.view->size());
}
BENCHMARK(BM_E1_ThreadGrowth)->Iterations(300);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
