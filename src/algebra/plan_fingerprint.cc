#include "algebra/plan_fingerprint.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace pgivm {

namespace {

/// Appends `s` length-prefixed, so user-controlled strings (labels, keys,
/// literals) can never collide with the key syntax around them.
void AppendRaw(const std::string& s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

void AppendInt(int64_t v, std::string* out) {
  out->append(std::to_string(v));
}

/// Label / edge-type sets are order-insensitive in the operators that carry
/// them (all-of semantics for labels, any-of for types).
void AppendSorted(std::vector<std::string> items, std::string* out) {
  std::sort(items.begin(), items.end());
  out->push_back('[');
  for (const std::string& item : items) {
    AppendRaw(item, out);
    out->push_back(',');
  }
  out->push_back(']');
}

char KindTag(Attribute::Kind kind) {
  switch (kind) {
    case Attribute::Kind::kVertex:
      return 'V';
    case Attribute::Kind::kEdge:
      return 'E';
    case Attribute::Kind::kPath:
      return 'P';
    case Attribute::Kind::kValue:
      return 'v';
  }
  return '?';
}

/// The output layout as attribute kinds only — names are aliases and stay
/// out of the fingerprint.
void AppendSchemaKinds(const Schema& schema, std::string* out) {
  out->push_back('<');
  for (const Attribute& attr : schema.attributes()) {
    out->push_back(KindTag(attr.kind));
  }
  out->push_back('>');
}

const char* ExtractWhatTag(PropertyExtract::What what) {
  switch (what) {
    case PropertyExtract::What::kProperty:
      return "p";
    case PropertyExtract::What::kLabels:
      return "l";
    case PropertyExtract::What::kType:
      return "t";
    case PropertyExtract::What::kPropertyMap:
      return "m";
  }
  return "?";
}

/// Canonical alias-insensitive rendering of `e` evaluated against `scope`:
/// scope variables become positions (#i), comprehension locals become
/// depth references (%d, innermost = 0). Returns false when the expression
/// cannot be canonicalized — the caller then skips sharing for the
/// enclosing operator.
bool CanonExpr(const ExprPtr& e, const Schema& scope,
               std::vector<std::string>* locals, std::string* out) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kLiteral:
      out->append("lit(");
      out->append(Value::TypeName(e->literal.type()));
      out->push_back(':');
      AppendRaw(e->literal.ToString(), out);
      out->push_back(')');
      return true;

    case ExprKind::kVariable: {
      for (size_t i = locals->size(); i-- > 0;) {
        if ((*locals)[i] == e->name) {
          out->push_back('%');
          AppendInt(static_cast<int64_t>(locals->size() - 1 - i), out);
          return true;
        }
      }
      int index = scope.IndexOf(e->name);
      if (index < 0) return false;
      out->push_back('#');
      AppendInt(index, out);
      return true;
    }

    case ExprKind::kColumnRef:
      out->push_back('#');
      AppendInt(e->column, out);
      return true;

    case ExprKind::kProperty:
      out->append("prop(");
      if (!CanonExpr(e->children[0], scope, locals, out)) return false;
      out->push_back(',');
      AppendRaw(e->name, out);
      out->push_back(')');
      return true;

    case ExprKind::kUnary:
      out->append("un(");
      out->append(UnaryOpName(e->unary_op));
      out->push_back(',');
      if (!CanonExpr(e->children[0], scope, locals, out)) return false;
      out->push_back(')');
      return true;

    case ExprKind::kBinary:
      out->append("bin(");
      out->append(BinaryOpName(e->binary_op));
      out->push_back(',');
      if (!CanonExpr(e->children[0], scope, locals, out)) return false;
      out->push_back(',');
      if (!CanonExpr(e->children[1], scope, locals, out)) return false;
      out->push_back(')');
      return true;

    case ExprKind::kFunctionCall:
      out->append("fn(");
      AppendRaw(e->name, out);
      if (e->star) out->append(",*");
      if (e->distinct) out->append(",d");
      for (const ExprPtr& child : e->children) {
        out->push_back(',');
        if (!CanonExpr(child, scope, locals, out)) return false;
      }
      out->push_back(')');
      return true;

    case ExprKind::kListLiteral:
      out->append("list(");
      for (const ExprPtr& child : e->children) {
        if (!CanonExpr(child, scope, locals, out)) return false;
        out->push_back(',');
      }
      out->push_back(')');
      return true;

    case ExprKind::kMapLiteral:
      out->append("map(");
      for (size_t i = 0; i < e->children.size(); ++i) {
        AppendRaw(e->map_keys[i], out);
        out->push_back('=');
        if (!CanonExpr(e->children[i], scope, locals, out)) return false;
        out->push_back(',');
      }
      out->push_back(')');
      return true;

    case ExprKind::kCase:
      out->append("case(");
      if (e->star) out->append("op,");
      if (e->distinct) out->append("else,");
      for (const ExprPtr& child : e->children) {
        if (!CanonExpr(child, scope, locals, out)) return false;
        out->push_back(',');
      }
      out->push_back(')');
      return true;

    case ExprKind::kComprehension: {
      out->append("compr(");
      AppendRaw(e->map_keys.empty() ? std::string("list") : e->map_keys[0],
                out);
      out->push_back(',');
      // children = [list, where, map]: the list is evaluated in the outer
      // scope, where/map see the local variable.
      if (!CanonExpr(e->children[0], scope, locals, out)) return false;
      locals->push_back(e->name);
      bool ok = true;
      for (size_t i = 1; i < e->children.size() && ok; ++i) {
        out->push_back(',');
        ok = CanonExpr(e->children[i], scope, locals, out);
      }
      locals->pop_back();
      if (!ok) return false;
      out->push_back(')');
      return true;
    }

    case ExprKind::kParameter:
    case ExprKind::kPatternPredicate:
      // Substituted / lowered before FRA; a survivor means this plan is
      // outside what we can canonicalize.
      return false;
  }
  return false;
}

bool CanonExprTop(const ExprPtr& e, const Schema& scope, std::string* out) {
  std::vector<std::string> locals;
  return CanonExpr(e, scope, &locals, out);
}

bool CanonOp(const LogicalOp& op, std::string* out);

bool CanonChild(const LogicalOp& op, size_t index, std::string* out) {
  if (index >= op.children.size() || op.children[index] == nullptr) {
    return false;
  }
  return CanonOp(*op.children[index], out);
}

/// Natural-join key pairs of the two child schemas, by position: the join
/// semantics of kJoin/kAntiJoin/kSemiJoin/kLeftOuterJoin are entirely
/// determined by which left column matches which right column.
void AppendJoinPairs(const Schema& left, const Schema& right,
                     std::string* out) {
  out->push_back('{');
  for (size_t i = 0; i < left.size(); ++i) {
    int r = right.IndexOf(left.at(i).name);
    if (r < 0) continue;
    AppendInt(static_cast<int64_t>(i), out);
    out->push_back('~');
    AppendInt(r, out);
    out->push_back(',');
  }
  out->push_back('}');
}

bool CanonOp(const LogicalOp& op, std::string* out) {
  switch (op.kind) {
    case OpKind::kUnit:
      out->append("Unit");
      return true;

    case OpKind::kGetVertices: {
      out->append("V(");
      AppendSorted(op.labels, out);
      int vertex_pos = op.schema.IndexOf(op.vertex_var);
      if (vertex_pos < 0) return false;
      out->push_back('@');
      AppendInt(vertex_pos, out);
      for (const PropertyExtract& extract : op.extracts) {
        int column_pos = op.schema.IndexOf(extract.column_name);
        if (column_pos < 0) return false;
        out->push_back(';');
        out->append(ExtractWhatTag(extract.what));
        AppendRaw(extract.key, out);
        out->push_back('@');
        AppendInt(column_pos, out);
      }
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kGetEdges: {
      out->append("E(");
      AppendSorted(op.edge_types, out);
      AppendInt(static_cast<int64_t>(op.direction), out);
      // Anonymous pattern elements may be absent from the schema: -1 is a
      // legitimate canonical position ("not emitted").
      out->push_back('@');
      AppendInt(op.schema.IndexOf(op.src_var), out);
      out->push_back(',');
      AppendInt(op.schema.IndexOf(op.edge_var), out);
      out->push_back(',');
      AppendInt(op.schema.IndexOf(op.dst_var), out);
      for (const PropertyExtract& extract : op.extracts) {
        int column_pos = op.schema.IndexOf(extract.column_name);
        if (column_pos < 0) return false;
        char role = extract.element_var == op.src_var    ? 's'
                    : extract.element_var == op.edge_var ? 'e'
                    : extract.element_var == op.dst_var  ? 'd'
                                                         : '?';
        if (role == '?') return false;
        out->push_back(';');
        out->push_back(role);
        out->append(ExtractWhatTag(extract.what));
        AppendRaw(extract.key, out);
        out->push_back('@');
        AppendInt(column_pos, out);
      }
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kPathJoin: {
      out->append("PJ(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(';');
      AppendSorted(op.edge_types, out);
      AppendInt(static_cast<int64_t>(op.direction), out);
      out->push_back(',');
      AppendInt(op.min_hops, out);
      out->push_back(',');
      AppendInt(op.max_hops, out);
      out->append(op.path_var.empty() ? ",-" : ",p");
      // Which child columns the path endpoints join on.
      const Schema& child = op.children[0]->schema;
      out->push_back('@');
      AppendInt(child.IndexOf(op.src_var), out);
      out->push_back(',');
      AppendInt(child.IndexOf(op.dst_var), out);
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kSelection: {
      out->append("S(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(';');
      if (!CanonExprTop(op.predicate, op.children[0]->schema, out)) {
        return false;
      }
      out->push_back(')');
      return true;
    }

    case OpKind::kProjection:
    case OpKind::kProduce: {
      // Produce is built as a plain projection; column *names* are aliases
      // and stay out of the key.
      out->append("P(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(';');
      for (const auto& [name, expr] : op.projections) {
        (void)name;
        if (!CanonExprTop(expr, op.children[0]->schema, out)) return false;
        out->push_back(',');
      }
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin: {
      out->append(op.kind == OpKind::kJoin       ? "J("
                  : op.kind == OpKind::kAntiJoin ? "AJ("
                                                 : "SJ(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(',');
      if (!CanonChild(op, 1, out)) return false;
      out->push_back(';');
      AppendJoinPairs(op.children[0]->schema, op.children[1]->schema, out);
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kLeftOuterJoin: {
      out->append("LOJ(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(',');
      if (!CanonChild(op, 1, out)) return false;
      out->push_back(';');
      AppendJoinPairs(op.children[0]->schema, op.children[1]->schema, out);
      // The null-pad projection: which output columns come from the left
      // child (by position) and which are padded.
      const Schema& left = op.children[0]->schema;
      out->push_back('{');
      for (const Attribute& attr : op.schema.attributes()) {
        int left_pos = left.IndexOf(attr.name);
        if (left_pos >= 0) {
          out->push_back('l');
          AppendInt(left_pos, out);
        } else {
          out->push_back('n');
        }
        out->push_back(',');
      }
      out->push_back('}');
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kUnion: {
      out->append("UN(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(',');
      if (!CanonChild(op, 1, out)) return false;
      out->push_back(';');
      // Right columns are aligned to the left's order by name.
      const Schema& left = op.children[0]->schema;
      const Schema& right = op.children[1]->schema;
      out->push_back('{');
      for (const Attribute& attr : left.attributes()) {
        int right_pos = right.IndexOf(attr.name);
        if (right_pos < 0) return false;
        AppendInt(right_pos, out);
        out->push_back(',');
      }
      out->push_back('}');
      out->push_back(')');
      return true;
    }

    case OpKind::kDistinct: {
      out->append("D(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(')');
      return true;
    }

    case OpKind::kAggregate: {
      out->append("G(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(';');
      const Schema& child = op.children[0]->schema;
      for (const auto& [name, expr] : op.group_by) {
        (void)name;
        if (!CanonExprTop(expr, child, out)) return false;
        out->push_back(',');
      }
      out->push_back(';');
      for (const auto& [name, expr] : op.aggregates) {
        (void)name;
        if (!CanonExprTop(expr, child, out)) return false;
        out->push_back(',');
      }
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kUnnest: {
      out->append("X(");
      if (!CanonChild(op, 0, out)) return false;
      out->push_back(';');
      const Schema& child = op.children[0]->schema;
      if (!CanonExprTop(op.unnest_expr, child, out)) return false;
      // Kept columns, exactly as the builder computes them.
      out->push_back('{');
      for (size_t i = 0; i < child.size(); ++i) {
        const std::string& name = child.at(i).name;
        bool dropped = false;
        for (const std::string& d : op.unnest_drop_columns) {
          if (d == name) dropped = true;
        }
        if (!dropped) {
          AppendInt(static_cast<int64_t>(i), out);
          out->push_back(',');
        }
      }
      out->push_back('}');
      out->push_back(')');
      AppendSchemaKinds(op.schema, out);
      return true;
    }

    case OpKind::kExpand:
      return false;  // removed by LowerToFra; never instantiated
  }
  return false;
}

// ---- expression canonicalization -------------------------------------------

/// AND/OR are associative and commutative (also in three-valued logic), so
/// their chains are flattened, key-sorted and rebuilt; the other commutative
/// operators only swap their two operands into key order. `+` is excluded —
/// it concatenates strings and lists.
bool IsChainOp(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsSwapOp(BinaryOp op) {
  return op == BinaryOp::kXor || op == BinaryOp::kEq ||
         op == BinaryOp::kNe || op == BinaryOp::kMul;
}

void FlattenChain(const ExprPtr& e, BinaryOp op, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == op) {
    FlattenChain(e->children[0], op, out);
    FlattenChain(e->children[1], op, out);
    return;
  }
  out->push_back(e);
}

/// Keys `terms` for ordering: canonical key first; expressions that cannot
/// be keyed sort after every keyable one, keeping their original relative
/// order (stable sort) so the result is at least deterministic per query.
void SortTermsByKey(std::vector<ExprPtr>& terms, const Schema& scope,
                    const std::vector<std::string>& locals) {
  std::vector<std::pair<std::string, ExprPtr>> keyed;
  keyed.reserve(terms.size());
  for (const ExprPtr& term : terms) {
    std::string key;
    std::vector<std::string> locals_copy = locals;
    if (!CanonExpr(term, scope, &locals_copy, &key)) key.clear();
    keyed.emplace_back(std::move(key), term);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return CanonicalKeyLess(a.first, b.first);
                   });
  terms.clear();
  for (auto& [key, term] : keyed) {
    (void)key;
    terms.push_back(std::move(term));
  }
}

ExprPtr RewriteCanonical(const ExprPtr& e, const Schema& scope,
                         std::vector<std::string>* locals) {
  if (e == nullptr) return e;
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  if (e->kind == ExprKind::kComprehension && !e->children.empty()) {
    // children = [list, where, map]: only the list sees the outer scope.
    children.push_back(RewriteCanonical(e->children[0], scope, locals));
    locals->push_back(e->name);
    for (size_t i = 1; i < e->children.size(); ++i) {
      children.push_back(RewriteCanonical(e->children[i], scope, locals));
    }
    locals->pop_back();
  } else {
    for (const ExprPtr& child : e->children) {
      children.push_back(RewriteCanonical(child, scope, locals));
    }
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] != e->children[i]) changed = true;
  }

  if (e->kind == ExprKind::kBinary && IsChainOp(e->binary_op)) {
    auto rebuilt = std::make_shared<Expression>(*e);
    rebuilt->children = std::move(children);
    std::vector<ExprPtr> terms;
    FlattenChain(rebuilt, e->binary_op, &terms);
    SortTermsByKey(terms, scope, *locals);
    ExprPtr chain = terms.front();
    for (size_t i = 1; i < terms.size(); ++i) {
      chain = MakeBinary(e->binary_op, std::move(chain), terms[i]);
    }
    return chain;
  }

  if (e->kind == ExprKind::kBinary && IsSwapOp(e->binary_op)) {
    std::string left_key, right_key;
    std::vector<std::string> locals_copy = *locals;
    bool left_ok = CanonExpr(children[0], scope, &locals_copy, &left_key);
    locals_copy = *locals;
    bool right_ok = CanonExpr(children[1], scope, &locals_copy, &right_key);
    if (left_ok && right_ok && right_key < left_key) {
      std::swap(children[0], children[1]);
      changed = true;
    }
  }

  if (!changed) return e;
  auto copy = std::make_shared<Expression>(*e);
  copy->children = std::move(children);
  return copy;
}

}  // namespace

std::string CanonicalPlanKey(const LogicalOp& op) {
  std::string key;
  if (!CanonOp(op, &key)) return std::string();
  return key;
}

std::string CanonicalExprKey(const ExprPtr& expr, const Schema& scope) {
  std::string key;
  if (!CanonExprTop(expr, scope, &key)) return std::string();
  return key;
}

ExprPtr CanonicalizeExpr(const ExprPtr& expr, const Schema& scope) {
  std::vector<std::string> locals;
  return RewriteCanonical(expr, scope, &locals);
}

bool CanonicalKeyLess(const std::string& a, const std::string& b) {
  if (a.empty() != b.empty()) return b.empty();
  return a < b;
}

uint64_t FingerprintHash(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string FormatFingerprint(const std::string& key) {
  if (key.empty()) return "fp=-";
  static const char* kHex = "0123456789abcdef";
  uint64_t hash = FingerprintHash(key);
  std::string out = "fp=";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(hash >> shift) & 0xf]);
  }
  return out;
}

OpPtr MirrorUndirectedLeaf(const LogicalOp& op) {
  if (op.kind != OpKind::kGetEdges || !op.children.empty() ||
      op.direction != EdgeDirection::kBoth) {
    return nullptr;
  }
  auto mirror = std::make_shared<LogicalOp>(op);
  std::swap(mirror->src_var, mirror->dst_var);
  // Extract roles flipped with the swap; restore the canonical
  // (role, what, key) order the canonicalize pass sorts leaves into —
  // property pushdown dedups accesses, so the triple is unique per leaf.
  auto role = [&mirror](const PropertyExtract& e) {
    if (e.element_var == mirror->src_var) return 0;
    if (e.element_var == mirror->edge_var) return 1;
    if (e.element_var == mirror->dst_var) return 2;
    return 3;
  };
  std::sort(mirror->extracts.begin(), mirror->extracts.end(),
            [&role](const PropertyExtract& a, const PropertyExtract& b) {
              if (role(a) != role(b)) return role(a) < role(b);
              if (a.what != b.what) return a.what < b.what;
              return a.key < b.key;
            });
  if (!ComputeSchemaShallow(mirror).ok()) return nullptr;
  return mirror;
}

}  // namespace pgivm
